package project

import (
	"math"
	"testing"

	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/itrs"
	"github.com/calcm/heterosim/internal/paper"
	"github.com/calcm/heterosim/internal/ucore"
)

func TestDefaultConfigValid(t *testing.T) {
	for _, w := range []paper.WorkloadID{paper.MMM, paper.BS, paper.FFT1024} {
		if err := DefaultConfig(w).Validate(); err != nil {
			t.Errorf("%s: %v", w, err)
		}
	}
	bad := DefaultConfig(paper.MMM)
	bad.PowerBudgetW = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero power budget must fail")
	}
	bad = DefaultConfig(paper.MMM)
	bad.Workload = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty workload must fail")
	}
}

func TestBudgetsAtFirstNode(t *testing.T) {
	cfg := DefaultConfig(paper.FFT1024)
	node, err := cfg.Roadmap.First()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.BudgetsAt(node)
	if err != nil {
		t.Fatal(err)
	}
	if b.Area != 19 {
		t.Errorf("A = %g, want 19", b.Area)
	}
	// P = 100 / BCE watts. FFT BCE ~ 11.6 W -> P ~ 8.6.
	if b.Power < 8 || b.Power > 9.3 {
		t.Errorf("P = %g, want ~8.6", b.Power)
	}
	// B = 180 / (BCE GFLOP/s x 0.32 B/flop) ~ 58.
	if b.Bandwidth < 55 || b.Bandwidth > 61 {
		t.Errorf("B = %g, want ~58", b.Bandwidth)
	}
}

func TestBudgetsScaleAcrossNodes(t *testing.T) {
	cfg := DefaultConfig(paper.MMM)
	nodes := cfg.Roadmap.Nodes()
	var prev bounds.Budgets
	for i, n := range nodes {
		b, err := cfg.BudgetsAt(n)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if b.Area <= prev.Area {
				t.Errorf("%s: area must grow", n.Name)
			}
			if b.Power <= prev.Power {
				t.Errorf("%s: power budget in BCE units must grow as transistors cheapen", n.Name)
			}
			if b.Bandwidth < prev.Bandwidth {
				t.Errorf("%s: bandwidth must not shrink", n.Name)
			}
		}
		prev = b
	}
	// MMM's high arithmetic intensity makes B huge (~340 at 40nm).
	b0, _ := cfg.BudgetsAt(nodes[0])
	if b0.Bandwidth < 300 {
		t.Errorf("MMM B = %g, want > 300 (rarely binding)", b0.Bandwidth)
	}
}

func TestBCEBandwidthUnits(t *testing.T) {
	refFFT, err := ucore.DefaultBCE(paper.FFT1024)
	if err != nil {
		t.Fatal(err)
	}
	gbFFT, err := BCEBandwidthGBs(paper.FFT1024, refFFT)
	if err != nil {
		t.Fatal(err)
	}
	// BCE FFT perf ~ 9.7 GFLOP/s x 0.32 -> ~3.1 GB/s.
	if gbFFT < 2.8 || gbFFT > 3.4 {
		t.Errorf("FFT BCE bandwidth = %g GB/s, want ~3.1", gbFFT)
	}
	refBS, err := ucore.DefaultBCE(paper.BS)
	if err != nil {
		t.Fatal(err)
	}
	gbBS, err := BCEBandwidthGBs(paper.BS, refBS)
	if err != nil {
		t.Fatal(err)
	}
	// BCE BS ~ 86 Mopt/s x 10 B = 0.86 GB/s.
	if gbBS < 0.75 || gbBS > 1.0 {
		t.Errorf("BS BCE bandwidth = %g GB/s, want ~0.86", gbBS)
	}
}

func TestDesignsForLineups(t *testing.T) {
	// FFT: SymCMP, AsymCMP, LX760, GTX285, GTX480, ASIC (no R5870).
	ds, err := DesignsFor(paper.FFT1024)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]string, len(ds))
	for i, d := range ds {
		labels[i] = d.Label
	}
	want := []string{"(0) SymCMP", "(1) AsymCMP", "(2) LX760", "(3) GTX285", "(4) GTX480", "(6) ASIC"}
	if len(labels) != len(want) {
		t.Fatalf("FFT lineup = %v", labels)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Errorf("FFT lineup[%d] = %s, want %s", i, labels[i], want[i])
		}
	}
	// MMM has all seven, and its ASIC is bandwidth-exempt.
	ds, err = DesignsFor(paper.MMM)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 7 {
		t.Fatalf("MMM lineup size = %d, want 7", len(ds))
	}
	last := ds[len(ds)-1]
	if last.Label != "(6) ASIC" || !last.ExemptBandwidth {
		t.Errorf("MMM ASIC design = %+v, want bandwidth-exempt", last)
	}
	// BS: SymCMP, AsymCMP, LX760, GTX285, ASIC.
	ds, err = DesignsFor(paper.BS)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 5 {
		t.Fatalf("BS lineup size = %d, want 5", len(ds))
	}
	if _, err := DesignsFor("bogus"); err == nil {
		t.Error("unknown workload must fail")
	}
}

func mustProject(t *testing.T, cfg Config, f float64) []Trajectory {
	t.Helper()
	ts, err := Project(cfg, f)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func speedups(t *testing.T, ts []Trajectory, label string) []float64 {
	t.Helper()
	tr, err := FindTrajectory(ts, label)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(tr.Points))
	for i, p := range tr.Points {
		if p.Valid {
			out[i] = p.Point.Speedup
		}
	}
	return out
}

// Figure 6 (FFT-1024) headline behaviours.
func TestFigure6FFTShape(t *testing.T) {
	cfg := DefaultConfig(paper.FFT1024)

	// ASIC is bandwidth-limited at every node and every f.
	for _, f := range paper.ProjectionFractions {
		ts := mustProject(t, cfg, f)
		asic, err := FindTrajectory(ts, "(6) ASIC")
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range asic.Points {
			if !p.Valid {
				t.Fatalf("f=%g %s: ASIC infeasible", f, p.Node.Name)
			}
			if p.Point.Limit != bounds.BandwidthLimited {
				t.Errorf("f=%g %s: ASIC limit = %v, want bandwidth-limited",
					f, p.Node.Name, p.Point.Limit)
			}
		}
	}

	// At f=0.5 no HET provides significant gain over the CMPs.
	ts := mustProject(t, cfg, 0.5)
	bestCMP := math.Max(speedups(t, ts, "(0) SymCMP")[4], speedups(t, ts, "(1) AsymCMP")[4])
	asic05 := speedups(t, ts, "(6) ASIC")[4]
	if asic05/bestCMP > 2 {
		t.Errorf("f=0.5: ASIC/CMP gap = %g, should be < 2", asic05/bestCMP)
	}

	// At f=0.99 the HETs clearly beat the CMPs.
	ts = mustProject(t, cfg, 0.99)
	bestCMP = math.Max(speedups(t, ts, "(0) SymCMP")[4], speedups(t, ts, "(1) AsymCMP")[4])
	fpga := speedups(t, ts, "(2) LX760")[4]
	if fpga/bestCMP < 1.5 {
		t.Errorf("f=0.99: FPGA/CMP gap = %g, want > 1.5", fpga/bestCMP)
	}

	// FPGA reaches ASIC-like bandwidth-limited performance by 32nm at
	// high parallelism; GPUs catch up by 16nm.
	ts = mustProject(t, cfg, 0.999)
	asicS := speedups(t, ts, "(6) ASIC")
	fpgaS := speedups(t, ts, "(2) LX760")
	gtx285S := speedups(t, ts, "(3) GTX285")
	if fpgaS[1] < 0.85*asicS[1] {
		t.Errorf("32nm: FPGA %g should be ASIC-like (ASIC %g)", fpgaS[1], asicS[1])
	}
	if gtx285S[3] < 0.85*asicS[3] {
		t.Errorf("16nm: GTX285 %g should be ASIC-like (ASIC %g)", gtx285S[3], asicS[3])
	}
}

// Figure 7 (MMM) headline behaviours.
func TestFigure7MMMShape(t *testing.T) {
	cfg := DefaultConfig(paper.MMM)
	for _, f := range paper.ProjectionFractions {
		ts := mustProject(t, cfg, f)
		asic, err := FindTrajectory(ts, "(6) ASIC")
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range asic.Points {
			if !p.Valid {
				t.Fatalf("ASIC infeasible at node %d", i)
			}
			// ASIC never bandwidth-limited (exempt).
			if p.Point.Limit == bounds.BandwidthLimited {
				t.Errorf("f=%g %s: MMM ASIC bandwidth-limited", f, p.Node.Name)
			}
			// ASIC achieves the highest performance of all designs.
			for _, other := range ts {
				if other.Design.Label == "(6) ASIC" {
					continue
				}
				if other.Points[i].Valid && other.Points[i].Point.Speedup > p.Point.Speedup+1e-9 {
					t.Errorf("f=%g %s: %s (%g) beats ASIC (%g)", f, p.Node.Name,
						other.Design.Label, other.Points[i].Point.Speedup, p.Point.Speedup)
				}
			}
		}
	}
	// Unless f >= 0.999, GPUs/FPGAs stay within a factor of five of the
	// ASIC (Section 6.1).
	ts := mustProject(t, cfg, 0.99)
	asicS := speedups(t, ts, "(6) ASIC")
	r5870S := speedups(t, ts, "(5) R5870")
	for i := range asicS {
		if asicS[i]/r5870S[i] > 5 {
			t.Errorf("f=0.99 node %d: ASIC/R5870 = %g, want <= 5", i, asicS[i]/r5870S[i])
		}
	}
	// At f=0.999 the ASIC pulls far ahead (paper: up to ~1000 speedup).
	ts = mustProject(t, cfg, 0.999)
	asic999 := speedups(t, ts, "(6) ASIC")[4]
	if asic999 < 400 {
		t.Errorf("f=0.999 11nm ASIC speedup = %g, want large (paper ~1000-scale)", asic999)
	}
}

// Figure 8 (Black-Scholes) headline behaviours.
func TestFigure8BSShape(t *testing.T) {
	cfg := DefaultConfig(paper.BS)
	// At f=0.5 even conventional CMPs are within ~2x of the ASIC.
	ts := mustProject(t, cfg, 0.5)
	asicS := speedups(t, ts, "(6) ASIC")
	cmpS := speedups(t, ts, "(1) AsymCMP")
	for i := range asicS {
		if asicS[i]/cmpS[i] > 2.2 {
			t.Errorf("f=0.5 node %d: ASIC/CMP = %g, want ~<= 2", i, asicS[i]/cmpS[i])
		}
	}
	// HETs converge to bandwidth-limited at later nodes for f=0.9.
	ts = mustProject(t, cfg, 0.9)
	for _, label := range []string{"(2) LX760", "(3) GTX285", "(6) ASIC"} {
		tr, err := FindTrajectory(ts, label)
		if err != nil {
			t.Fatal(err)
		}
		last := tr.Points[len(tr.Points)-1]
		if !last.Valid {
			t.Fatalf("%s infeasible at 11nm", label)
		}
		if last.Point.Limit != bounds.BandwidthLimited {
			t.Errorf("%s at 11nm: limit = %v, want bandwidth-limited", label, last.Point.Limit)
		}
	}
}

// Speedup trajectories are non-decreasing across nodes (budgets only
// relax), and speedup is monotone in f for HETs at high parallelism.
func TestTrajectoriesMonotone(t *testing.T) {
	for _, w := range []paper.WorkloadID{paper.FFT1024, paper.MMM, paper.BS} {
		cfg := DefaultConfig(w)
		ts := mustProject(t, cfg, 0.9)
		for _, tr := range ts {
			prev := 0.0
			for _, p := range tr.Points {
				if !p.Valid {
					continue
				}
				if p.Point.Speedup < prev-1e-9 {
					t.Errorf("%s/%s: speedup decreased across nodes", w, tr.Design.Label)
				}
				prev = p.Point.Speedup
			}
		}
	}
}

func TestProjectEnergyNeverWorseThanSpeedupOptimal(t *testing.T) {
	cfg := DefaultConfig(paper.MMM)
	sp := mustProject(t, cfg, 0.9)
	en, err := ProjectEnergy(cfg, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sp {
		for j := range sp[i].Points {
			if !sp[i].Points[j].Valid || !en[i].Points[j].Valid {
				continue
			}
			if en[i].Points[j].EnergyNode > sp[i].Points[j].EnergyNode+1e-9 {
				t.Errorf("%s node %d: energy-optimal %g > speedup-optimal %g",
					sp[i].Design.Label, j,
					en[i].Points[j].EnergyNode, sp[i].Points[j].EnergyNode)
			}
		}
	}
}

// Figure 10: at moderate-to-high parallelism the ASIC achieves a large
// energy reduction relative to the CMP baselines and the other U-cores.
func TestFigure10EnergyShape(t *testing.T) {
	cfg := DefaultConfig(paper.MMM)
	ts, err := ProjectEnergy(cfg, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	get := func(label string, node int) float64 {
		tr, err := FindTrajectory(ts, label)
		if err != nil {
			t.Fatal(err)
		}
		if !tr.Points[node].Valid {
			t.Fatalf("%s node %d infeasible", label, node)
		}
		return tr.Points[node].EnergyNode
	}
	asic := get("(6) ASIC", 0)
	cmp := get("(1) AsymCMP", 0)
	if cmp/asic < 3 {
		t.Errorf("f=0.9 40nm: CMP/ASIC energy ratio = %g, want >= 3", cmp/asic)
	}
	// Energy falls across generations (circuit improvements).
	if get("(6) ASIC", 4) >= asic {
		t.Error("ASIC energy should fall across nodes")
	}
	// At f=0.5 the sequential core limits energy reduction: ratio shrinks.
	ts05, err := ProjectEnergy(cfg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := FindTrajectory(ts05, "(6) ASIC")
	c, _ := FindTrajectory(ts05, "(1) AsymCMP")
	ratio05 := c.Points[0].EnergyNode / a.Points[0].EnergyNode
	ratio09 := cmp / asic
	if ratio05 >= ratio09 {
		t.Errorf("energy advantage should grow with f: %g (f=.5) vs %g (f=.9)",
			ratio05, ratio09)
	}
}

func TestFindTrajectoryError(t *testing.T) {
	cfg := DefaultConfig(paper.BS)
	ts := mustProject(t, cfg, 0.5)
	if _, err := FindTrajectory(ts, "(9) TPU"); err == nil {
		t.Error("unknown label must fail")
	}
}

func TestProjectValidation(t *testing.T) {
	cfg := DefaultConfig(paper.MMM)
	if _, err := Project(cfg, -1); err == nil {
		t.Error("bad f must fail")
	}
	if _, err := Project(cfg, math.NaN()); err == nil {
		t.Error("NaN f must fail")
	}
	bad := cfg
	bad.AreaScale = -1
	if _, err := Project(bad, 0.5); err == nil {
		t.Error("bad config must fail")
	}
	if _, err := ProjectEnergy(bad, 0.5); err == nil {
		t.Error("bad config must fail for energy too")
	}
}

func TestMaxSpeedup(t *testing.T) {
	cfg := DefaultConfig(paper.FFT1024)
	ts := mustProject(t, cfg, 0.9)
	tr, err := FindTrajectory(ts, "(6) ASIC")
	if err != nil {
		t.Fatal(err)
	}
	max := tr.MaxSpeedup()
	last := tr.Points[len(tr.Points)-1]
	if !last.Valid || max < last.Point.Speedup {
		t.Errorf("MaxSpeedup = %g, last = %g", max, last.Point.Speedup)
	}
	empty := Trajectory{}
	if empty.MaxSpeedup() != 0 {
		t.Error("empty trajectory max should be 0")
	}
}

// The trajectories at 40nm should land in the magnitude range the paper
// plots (Figure 6: f=0.999 ASIC ~50-70 at the bandwidth ceiling).
func TestFigure6Magnitudes(t *testing.T) {
	cfg := DefaultConfig(paper.FFT1024)
	ts := mustProject(t, cfg, 0.999)
	asic := speedups(t, ts, "(6) ASIC")
	if asic[0] < 40 || asic[0] > 75 {
		t.Errorf("40nm f=0.999 ASIC speedup = %g, paper plots ~55-65", asic[0])
	}
	sym := speedups(t, ts, "(0) SymCMP")
	if sym[0] < 3 || sym[0] > 12 {
		t.Errorf("40nm f=0.999 SymCMP speedup = %g, paper plots ~5", sym[0])
	}
	_ = itrs.ITRS2009()
}
