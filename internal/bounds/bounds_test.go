package bounds

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/calcm/heterosim/internal/pollack"
)

var law = pollack.Default()

func validBudgets() Budgets {
	return Budgets{Area: 19, Power: 8.6, Bandwidth: 57.9}
}

func TestBudgetsValidate(t *testing.T) {
	if err := validBudgets().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Budgets{
		{Area: 0, Power: 1, Bandwidth: 1},
		{Area: 1, Power: -1, Bandwidth: 1},
		{Area: 1, Power: 1, Bandwidth: math.NaN()},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestUCoreValidate(t *testing.T) {
	if err := (UCore{Mu: 2, Phi: 0.5}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (UCore{Mu: 0, Phi: 1}).Validate(); err == nil {
		t.Error("mu=0 should fail")
	}
	if err := (UCore{Mu: 1, Phi: -2}).Validate(); err == nil {
		t.Error("phi<0 should fail")
	}
}

func TestSerialFeasible(t *testing.T) {
	b := validBudgets()
	if err := SerialFeasible(law, b, 1); err != nil {
		t.Fatalf("r=1 must be feasible: %v", err)
	}
	// Serial power bound: r^0.875 <= 8.6 -> r <= 8.6^(8/7) ~ 11.7.
	if err := SerialFeasible(law, b, 11); err != nil {
		t.Errorf("r=11 should be power-feasible: %v", err)
	}
	if err := SerialFeasible(law, b, 13); err == nil {
		t.Error("r=13 should violate serial power bound")
	}
	// Serial area bound.
	if err := SerialFeasible(law, Budgets{Area: 4, Power: 100, Bandwidth: 100}, 5); err == nil {
		t.Error("r > A should fail")
	}
	// Serial bandwidth bound: r <= B^2.
	if err := SerialFeasible(law, Budgets{Area: 100, Power: 1000, Bandwidth: 2}, 5); err == nil {
		t.Error("r=5 > B^2=4 should fail")
	}
	if err := SerialFeasible(law, b, 0.5); err == nil {
		t.Error("r < 1 should fail")
	}
}

func TestMaxSerialR(t *testing.T) {
	b := validBudgets()
	r, err := MaxSerialR(law, b)
	if err != nil {
		t.Fatal(err)
	}
	// 8.6^(2/1.75) = 8.6^1.1428 ~ 11.7 -> max integer r is 11.
	if r != 11 {
		t.Errorf("MaxSerialR = %d, want 11", r)
	}
	// Infeasible even at r=1.
	if _, err := MaxSerialR(law, Budgets{Area: 19, Power: 0.5, Bandwidth: 10}); err == nil {
		t.Error("P=0.5 cannot power even one BCE serial core at r=1... r=1 power is 1 > 0.5")
	}
}

func TestSymmetricBoundsTable1(t *testing.T) {
	b := validBudgets()
	got, err := Symmetric(law, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	// n <= P / r^(alpha/2 - 1) = 8.6 / 2^(-0.125) = 8.6 * 2^0.125.
	wantPow := 8.6 * math.Pow(2, 0.125)
	if math.Abs(got.NPower-wantPow) > 1e-9 {
		t.Errorf("NPower = %g, want %g", got.NPower, wantPow)
	}
	// n <= B sqrt(r).
	wantBW := 57.9 * math.Sqrt2
	if math.Abs(got.NBandwidt-wantBW) > 1e-9 {
		t.Errorf("NBandwidth = %g, want %g", got.NBandwidt, wantBW)
	}
	if got.NArea != 19 {
		t.Errorf("NArea = %g, want 19", got.NArea)
	}
	// Power is the binding budget here (9.67 < 19 < 81.9).
	if got.Limit != PowerLimited {
		t.Errorf("Limit = %v, want power-limited", got.Limit)
	}
	if math.Abs(got.N-wantPow) > 1e-9 {
		t.Errorf("N = %g, want %g", got.N, wantPow)
	}
}

func TestAsymmetricOffloadBounds(t *testing.T) {
	b := validBudgets()
	got, err := AsymmetricOffload(law, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.NPower != b.Power+4 {
		t.Errorf("NPower = %g, want %g", got.NPower, b.Power+4)
	}
	if got.NBandwidt != b.Bandwidth+4 {
		t.Errorf("NBandwidth = %g, want %g", got.NBandwidt, b.Bandwidth+4)
	}
	// P+r = 12.6 < A=19 -> power-limited.
	if got.Limit != PowerLimited || got.N != 12.6 {
		t.Errorf("got %+v, want power-limited N=12.6", got)
	}
}

func TestHeterogeneousBounds(t *testing.T) {
	b := validBudgets()
	// FFT-1024 ASIC: mu=489, phi=4.96 -> bandwidth bound tiny.
	asic := UCore{Mu: 489, Phi: 4.96}
	got, err := Heterogeneous(law, b, 2, asic)
	if err != nil {
		t.Fatal(err)
	}
	wantBW := 57.9/489 + 2
	if math.Abs(got.NBandwidt-wantBW) > 1e-9 {
		t.Errorf("NBandwidth = %g, want %g", got.NBandwidt, wantBW)
	}
	if got.Limit != BandwidthLimited {
		t.Errorf("ASIC FFT should be bandwidth-limited, got %v", got.Limit)
	}
	// FFT-1024 FPGA: mu=2.02, phi=0.29 -> area-limited at 40nm.
	fpga := UCore{Mu: 2.02, Phi: 0.29}
	got, err = Heterogeneous(law, b, 2, fpga)
	if err != nil {
		t.Fatal(err)
	}
	if got.Limit != AreaLimited || got.N != 19 {
		t.Errorf("FPGA FFT at 40nm should be area-limited with N=19, got %+v", got)
	}
	// Invalid U-core propagates.
	if _, err := Heterogeneous(law, b, 2, UCore{Mu: -1, Phi: 1}); err == nil {
		t.Error("invalid U-core must fail")
	}
}

func TestInfeasibleSerialPropagates(t *testing.T) {
	b := validBudgets()
	if _, err := Symmetric(law, b, 15); err == nil {
		t.Error("r=15 violates serial power bound; Symmetric must fail")
	}
	bnd, err := Heterogeneous(law, b, 15, UCore{Mu: 1, Phi: 1})
	if err == nil {
		t.Error("r=15 must fail for Heterogeneous too")
	}
	if bnd.Limit != Infeasible {
		t.Errorf("Limit = %v, want infeasible", bnd.Limit)
	}
}

func TestNNeverBelowR(t *testing.T) {
	// A pathological U-core with enormous phi exhausts the parallel power
	// budget immediately; n must clamp at r, not go below.
	b := Budgets{Area: 100, Power: 2, Bandwidth: 1000}
	got, err := Heterogeneous(law, b, 1, UCore{Mu: 1, Phi: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if got.N < got.R {
		t.Errorf("N = %g fell below r = %g", got.N, got.R)
	}
}

func TestLimitString(t *testing.T) {
	if AreaLimited.String() != "area-limited" ||
		PowerLimited.String() != "power-limited" ||
		BandwidthLimited.String() != "bandwidth-limited" ||
		Infeasible.String() != "infeasible" {
		t.Error("Limit.String mismatch")
	}
	if Limit(9).String() == "" {
		t.Error("unknown limit should print something")
	}
}

// ---- Property-based tests -------------------------------------------------

func saneBudgets(a, p, bw float64) Budgets {
	return Budgets{
		Area:      2 + math.Mod(math.Abs(a), 500),
		Power:     1 + math.Mod(math.Abs(p), 500),
		Bandwidth: 1 + math.Mod(math.Abs(bw), 500),
	}
}

// Property: every bound is monotone in its budget — relaxing any budget
// never reduces N.
func TestPropBoundsMonotoneInBudgets(t *testing.T) {
	prop := func(a, p, bw, rr, m, ph float64) bool {
		b := saneBudgets(a, p, bw)
		r := 1.0
		u := UCore{Mu: 0.1 + math.Mod(math.Abs(m), 100), Phi: 0.1 + math.Mod(math.Abs(ph), 10)}
		base, err := Heterogeneous(law, b, r, u)
		if err != nil {
			return true // serial-infeasible draws are uninteresting
		}
		for _, relaxed := range []Budgets{
			{b.Area * 2, b.Power, b.Bandwidth},
			{b.Area, b.Power * 2, b.Bandwidth},
			{b.Area, b.Power, b.Bandwidth * 2},
		} {
			got, err := Heterogeneous(law, relaxed, r, u)
			if err != nil || got.N < base.N-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: N equals the minimum of the three per-budget bounds (when
// above r), and the attributed limit matches that minimum.
func TestPropAttributionConsistent(t *testing.T) {
	prop := func(a, p, bw float64) bool {
		b := saneBudgets(a, p, bw)
		got, err := AsymmetricOffload(law, b, 1)
		if err != nil {
			return true
		}
		min := math.Min(got.NArea, math.Min(got.NPower, got.NBandwidt))
		if min >= got.R && math.Abs(got.N-min) > 1e-9 {
			return false
		}
		switch got.Limit {
		case AreaLimited:
			return got.NArea <= got.NPower+1e-9 && got.NArea <= got.NBandwidt+1e-9
		case PowerLimited:
			return got.NPower < got.NArea+1e-9
		case BandwidthLimited:
			return got.NBandwidt < got.NArea+1e-9
		}
		return false
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: lower phi (more efficient U-core) never reduces the power
// bound; higher mu never increases the bandwidth bound.
func TestPropUCoreParameterDirections(t *testing.T) {
	b := validBudgets()
	prop := func(m, ph float64) bool {
		u := UCore{Mu: 0.1 + math.Mod(math.Abs(m), 100), Phi: 0.1 + math.Mod(math.Abs(ph), 10)}
		base, err := Heterogeneous(law, b, 1, u)
		if err != nil {
			return false
		}
		better, err := Heterogeneous(law, b, 1, UCore{Mu: u.Mu, Phi: u.Phi / 2})
		if err != nil || better.NPower < base.NPower {
			return false
		}
		faster, err := Heterogeneous(law, b, 1, UCore{Mu: u.Mu * 2, Phi: u.Phi})
		if err != nil || faster.NBandwidt > base.NBandwidt {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
