// analytic.go is the closed-form side of Table 1: instead of probing the
// bounds row by row for every r, these helpers identify where each budget
// binds as a function of r, so an optimizer can visit only the O(pieces)
// candidate core sizes whose speedup can be maximal.
//
// The structure being exploited: for a fixed design family the usable
// resources are n(r) = min of three smooth curves, one per budget.
//
//	symmetric:     n = min(A, P·r^(1-α/2), B·√r)
//	asym-offload:  n = min(A, P+r, B+r) = min(A, min(P,B)+r)
//	heterogeneous: n = min(A, P/φ+r, B/µ+r) = min(A, min(P/φ,B/µ)+r)
//
// Each pair of curves has a monotone ratio in r, so each pair crosses at
// most once and the binding budget changes only at those crossings. The
// speedup restricted to one piece is monotone or unimodal (package core
// derives the per-piece optima), so the integer argmax over r lies at a
// piece boundary or adjacent to a per-piece stationary point.
package bounds

import (
	"math"

	"github.com/calcm/heterosim/internal/pollack"
)

// Attribute takes the three per-budget bounds for core size r, clamps n
// below by r (a chip always contains at least its sequential core), and
// identifies the binding budget. Area wins attribution only when it is
// the strict minimum; when power or bandwidth prevents the full area from
// being used, that budget is reported (matching the dashed/solid plotting
// convention). It is the assembly step shared by Symmetric,
// AsymmetricOffload, and Heterogeneous, exported so closed-form callers
// that compute the three bounds themselves produce bit-identical Bounds.
func Attribute(r, nArea, nPow, nBW float64) Bound {
	n := math.Min(nArea, math.Min(nPow, nBW))
	lim := AreaLimited
	switch {
	case nPow < nArea && nPow <= nBW:
		lim = PowerLimited
	case nBW < nArea && nBW < nPow:
		lim = BandwidthLimited
	}
	if n < r {
		// The parallel-phase budget cannot even cover the sequential core's
		// area slot; the usable n degenerates to r (no parallel resources).
		n = r
	}
	return Bound{R: r, NArea: nArea, NPower: nPow, NBandwidt: nBW, N: n, Limit: lim}
}

// serialOK reports whether integer core size r passes the three serial
// bounds, with exactly the comparisons SerialFeasible makes (so the two
// never disagree at a float boundary) but without constructing errors.
func serialOK(law pollack.Law, b Budgets, r float64) bool {
	if r > b.Area {
		return false
	}
	pw, err := law.Power(r)
	if err != nil || pw > b.Power {
		return false
	}
	return !(r > b.Bandwidth*b.Bandwidth)
}

// SerialCap returns the largest integer r in [1, maxR] satisfying all
// three serial bounds (r <= A, r^(α/2) <= P, r <= B²), or 0 when even
// r = 1 is infeasible. The cap is solved in closed form and then the
// boundary is verified with the exact SerialFeasible comparisons, so the
// result matches a linear scan bit for bit. The budgets must already be
// valid (Validate passed); +Inf budgets are allowed and simply do not
// bind.
func SerialCap(law pollack.Law, b Budgets, maxR int) int {
	if maxR < 1 {
		return 0
	}
	alpha := law.Alpha()
	cap := math.Min(b.Area, b.Bandwidth*b.Bandwidth)
	if alpha > 0 {
		// r^(α/2) <= P  ⇔  r <= P^(2/α); P < 1 leaves no room even for r=1,
		// which the verification loop below confirms. MaxRForPower computes
		// the identical expression, with a memo for the sweep case of one
		// power budget probed once per cell.
		if mp, err := law.MaxRForPower(b.Power); err == nil {
			cap = math.Min(cap, mp)
		} else {
			cap = math.Min(cap, math.Pow(b.Power, 2/alpha))
		}
	} else if !(1 <= b.Power) {
		// Degenerate α <= 0: power is flat at 1 for every r.
		return 0
	}
	g := maxR
	if cap < float64(maxR) {
		g = int(math.Floor(cap))
	}
	if g > maxR {
		g = maxR
	}
	if g < 0 {
		g = 0
	}
	// Closed form can be off by an ulp at a boundary: settle it with the
	// exact comparisons (normally at most one probe in each direction).
	for g > 0 && !serialOK(law, b, float64(g)) {
		g--
	}
	for g < maxR && serialOK(law, b, float64(g+1)) {
		g++
	}
	return g
}

// SymmetricBreaks appends to buf the r values at which the binding budget
// of the symmetric-CMP bound can change: the pairwise crossings of A,
// P·r^(1-α/2), and B·√r. Values may fall outside the caller's feasible
// range (or be 0/±Inf for degenerate budget ratios); callers clamp.
func SymmetricBreaks(law pollack.Law, b Budgets, buf []float64) []float64 {
	alpha := law.Alpha()
	if alpha != 2 {
		// A = P·r^(1-α/2)  ⇔  r = (A/P)^(2/(2-α))
		buf = append(buf, math.Pow(b.Area/b.Power, 2/(2-alpha)))
	}
	// A = B·√r  ⇔  r = (A/B)²
	ab := b.Area / b.Bandwidth
	buf = append(buf, ab*ab)
	if alpha != 1 {
		// P·r^(1-α/2) = B·√r  ⇔  r = (P/B)^(2/(α-1))
		buf = append(buf, math.Pow(b.Power/b.Bandwidth, 2/(alpha-1)))
	}
	return buf
}

// AsymmetricOffloadBreaks appends the single crossing of the asym-offload
// bound: below r = A - min(P, B) the cheaper of power/bandwidth binds
// (n - r is constant), above it area binds (n = A).
func AsymmetricOffloadBreaks(b Budgets, buf []float64) []float64 {
	return append(buf, b.Area-math.Min(b.Power, b.Bandwidth))
}

// HeterogeneousBreaks is AsymmetricOffloadBreaks with the U-core scaled
// budgets: the crossing sits at r = A - min(P/φ, B/µ).
func HeterogeneousBreaks(b Budgets, u UCore, buf []float64) []float64 {
	return append(buf, b.Area-math.Min(b.Power/u.Phi, b.Bandwidth/u.Mu))
}
