// Package bounds implements Table 1 of Chung et al. (MICRO 2010): the
// area, power, and bandwidth bounds that jointly limit the resources
// (n, r) of symmetric, asymmetric-offload, and heterogeneous single-chip
// multiprocessors.
//
// All quantities are expressed in BCE-relative units:
//
//   - Area budget A: chip compute area in units of one BCE core.
//   - Power budget P: chip power in units of one actively-executing BCE.
//   - Bandwidth budget B: off-chip bandwidth in units of the compulsory
//     bandwidth of one BCE running the workload of interest.
//
// The "bounded n" is the maximum number of BCE resource units that can
// usefully contribute to speedup; whichever budget produces the smallest
// bound is the design's limiting factor, which the paper renders as
// dashed (power-limited) or solid (bandwidth-limited) trajectory segments.
package bounds

import (
	"errors"
	"fmt"
	"math"

	"github.com/calcm/heterosim/internal/pollack"
)

// Limit identifies which budget binds a design point.
type Limit int

const (
	// AreaLimited means the full area budget is used and neither power nor
	// bandwidth cuts it further (plotted as unconnected points).
	AreaLimited Limit = iota
	// PowerLimited means power prevents using the full area (dashed).
	PowerLimited
	// BandwidthLimited means off-chip bandwidth prevents using the full
	// area (solid).
	BandwidthLimited
	// Infeasible means no valid design exists (serial bounds violated).
	Infeasible
	// ThermalLimited means a temperature budget caps power below the
	// nominal power budget and that cap binds — the fourth constraint
	// introduced by the multiamdahl-thermal model backend. It follows
	// Infeasible so the original enum values stay stable.
	ThermalLimited
)

// String names the limit the way the paper's figures do.
func (l Limit) String() string {
	switch l {
	case AreaLimited:
		return "area-limited"
	case PowerLimited:
		return "power-limited"
	case BandwidthLimited:
		return "bandwidth-limited"
	case Infeasible:
		return "infeasible"
	case ThermalLimited:
		return "thermal-limited"
	default:
		return fmt.Sprintf("Limit(%d)", int(l))
	}
}

// Budgets carries the three chip budgets in BCE-relative units.
type Budgets struct {
	Area      float64 // A, in BCE cores
	Power     float64 // P, in BCE active power
	Bandwidth float64 // B, in BCE compulsory bandwidth
}

// Validate reports an error when any budget is non-positive or NaN.
func (b Budgets) Validate() error {
	if b.Area <= 0 || math.IsNaN(b.Area) {
		return errors.New("bounds: area budget must be positive")
	}
	if b.Power <= 0 || math.IsNaN(b.Power) {
		return errors.New("bounds: power budget must be positive")
	}
	if b.Bandwidth <= 0 || math.IsNaN(b.Bandwidth) {
		return errors.New("bounds: bandwidth budget must be positive")
	}
	return nil
}

// UCore characterizes a BCE-sized unconventional core: relative
// performance Mu and relative active power Phi (Section 3.3).
type UCore struct {
	Mu  float64
	Phi float64
}

// Validate reports an error when mu or phi is non-positive or NaN.
func (u UCore) Validate() error {
	if u.Mu <= 0 || math.IsNaN(u.Mu) {
		return errors.New("bounds: U-core mu must be positive")
	}
	if u.Phi <= 0 || math.IsNaN(u.Phi) {
		return errors.New("bounds: U-core phi must be positive")
	}
	return nil
}

// Bound is one row of the solved constraint system for a fixed r: the
// maximum usable n under each budget, the binding minimum, and its cause.
type Bound struct {
	R         float64 // sequential core size examined
	NArea     float64 // n bound from area: n <= A
	NPower    float64 // n bound from parallel power
	NBandwidt float64 // n bound from parallel bandwidth
	N         float64 // min of the three (and >= r)
	Limit     Limit   // which budget binds
}

// SerialFeasible checks Table 1's serial bounds for a sequential core of
// size r: r^(alpha/2) <= P (serial power) and r <= B^2 (serial bandwidth),
// plus the trivial r <= A. It returns nil when r is feasible.
func SerialFeasible(law pollack.Law, b Budgets, r float64) error {
	if err := b.Validate(); err != nil {
		return err
	}
	if r < 1 || math.IsNaN(r) {
		return errors.New("bounds: r must be >= 1")
	}
	if r > b.Area {
		return fmt.Errorf("bounds: serial area bound violated: r=%.3g > A=%.3g", r, b.Area)
	}
	pw, err := law.Power(r)
	if err != nil {
		return err
	}
	if pw > b.Power {
		return fmt.Errorf("bounds: serial power bound violated: r^(a/2)=%.3g > P=%.3g", pw, b.Power)
	}
	if r > b.Bandwidth*b.Bandwidth {
		return fmt.Errorf("bounds: serial bandwidth bound violated: r=%.3g > B^2=%.3g", r, b.Bandwidth*b.Bandwidth)
	}
	return nil
}

// MaxSerialR returns the largest integer r >= 1 satisfying all three
// serial bounds, or an error when even r = 1 is infeasible.
func MaxSerialR(law pollack.Law, b Budgets) (int, error) {
	if err := SerialFeasible(law, b, 1); err != nil {
		return 0, err
	}
	r := 1
	for SerialFeasible(law, b, float64(r+1)) == nil {
		r++
	}
	return r, nil
}

// Symmetric solves the symmetric-CMP column of Table 1 for core size r:
//
//	area:      n <= A
//	power:     n <= P / r^(alpha/2 - 1)
//	bandwidth: n <= B * sqrt(r)
func Symmetric(law pollack.Law, b Budgets, r float64) (Bound, error) {
	if err := SerialFeasible(law, b, r); err != nil {
		return Bound{R: r, Limit: Infeasible}, err
	}
	nPow := b.Power / math.Pow(r, law.Alpha()/2-1)
	nBW := b.Bandwidth * math.Sqrt(r)
	return Attribute(r, b.Area, nPow, nBW), nil
}

// AsymmetricOffload solves the asym-offload column of Table 1 for core
// size r (fast core off during parallel phases):
//
//	area:      n <= A
//	power:     n <= P + r
//	bandwidth: n <= B + r
func AsymmetricOffload(law pollack.Law, b Budgets, r float64) (Bound, error) {
	if err := SerialFeasible(law, b, r); err != nil {
		return Bound{R: r, Limit: Infeasible}, err
	}
	return Attribute(r, b.Area, b.Power+r, b.Bandwidth+r), nil
}

// Heterogeneous solves the heterogeneous column of Table 1 for core size
// r and U-core (mu, phi):
//
//	area:      n <= A
//	power:     n <= P/phi + r
//	bandwidth: n <= B/mu + r
//
// Lower phi values stretch the power budget; higher mu values consume
// bandwidth faster — exactly the tension the paper studies.
func Heterogeneous(law pollack.Law, b Budgets, r float64, u UCore) (Bound, error) {
	if err := u.Validate(); err != nil {
		return Bound{R: r, Limit: Infeasible}, err
	}
	if err := SerialFeasible(law, b, r); err != nil {
		return Bound{R: r, Limit: Infeasible}, err
	}
	return Attribute(r, b.Area, b.Power/u.Phi+r, b.Bandwidth/u.Mu+r), nil
}
