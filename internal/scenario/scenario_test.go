package scenario

import (
	"testing"

	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/paper"
	"github.com/calcm/heterosim/internal/project"
)

func get(t *testing.T, id ID) Scenario {
	t.Helper()
	s, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func run(t *testing.T, id ID, w paper.WorkloadID, f float64) []project.Trajectory {
	t.Helper()
	ts, err := Run(get(t, id), w, f)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func find(t *testing.T, ts []project.Trajectory, label string) project.Trajectory {
	t.Helper()
	tr, err := project.FindTrajectory(ts, label)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestAllScenariosListed(t *testing.T) {
	all := All()
	if len(all) != 7 {
		t.Fatalf("len = %d, want 7 (baseline + six)", len(all))
	}
	for i, s := range all {
		if s.ID != ID(i) {
			t.Errorf("scenario %d has ID %d", i, int(s.ID))
		}
		if s.Name == "" || s.Rationale == "" || s.Expectation == "" {
			t.Errorf("scenario %d missing documentation", i)
		}
	}
	if _, err := Get(ID(99)); err == nil {
		t.Error("unknown scenario must fail")
	}
}

func TestBaselineApplyIsIdentity(t *testing.T) {
	cfg := project.DefaultConfig(paper.MMM)
	got := get(t, Baseline).Apply(cfg)
	if got.PowerBudgetW != cfg.PowerBudgetW || got.BaseBandwidthGBs != cfg.BaseBandwidthGBs ||
		got.AreaScale != cfg.AreaScale || got.Alpha != cfg.Alpha {
		t.Error("baseline scenario must not modify the config")
	}
}

func TestApplyTransforms(t *testing.T) {
	cfg := project.DefaultConfig(paper.FFT1024)
	if got := get(t, LowBandwidth).Apply(cfg); got.BaseBandwidthGBs != 90 {
		t.Errorf("S1 bandwidth = %g", got.BaseBandwidthGBs)
	}
	if got := get(t, HighBandwidth).Apply(cfg); got.BaseBandwidthGBs != 1000 {
		t.Errorf("S2 bandwidth = %g", got.BaseBandwidthGBs)
	}
	if got := get(t, HalfArea).Apply(cfg); got.AreaScale != 0.5 {
		t.Errorf("S3 area scale = %g", got.AreaScale)
	}
	if got := get(t, DoublePower).Apply(cfg); got.PowerBudgetW != 200 {
		t.Errorf("S4 power = %g", got.PowerBudgetW)
	}
	if got := get(t, MobilePower).Apply(cfg); got.PowerBudgetW != 10 {
		t.Errorf("S5 power = %g", got.PowerBudgetW)
	}
	if got := get(t, SerialPower).Apply(cfg); got.Alpha != 2.25 {
		t.Errorf("S6 alpha = %g", got.Alpha)
	}
}

// Scenario 1: with 90 GB/s, FFT CMPs come within ~2x of the ASIC at 22nm
// and beyond (any f) because the bandwidth ceiling is so low.
func TestScenario1FFTCMPsCatchASIC(t *testing.T) {
	ts := run(t, LowBandwidth, paper.FFT1024, 0.99)
	asic := find(t, ts, "(6) ASIC")
	cmp := find(t, ts, "(1) AsymCMP")
	for i := 2; i < len(asic.Points); i++ { // 22nm onward
		a, c := asic.Points[i], cmp.Points[i]
		if !a.Valid || !c.Valid {
			t.Fatalf("infeasible point at node %d", i)
		}
		if ratio := a.Point.Speedup / c.Point.Speedup; ratio > 2.6 {
			t.Errorf("node %d: ASIC/CMP = %g, want within ~2x", i, ratio)
		}
	}
	// FPGA converges to the ASIC by 32nm under the lower ceiling.
	fpga := find(t, ts, "(2) LX760")
	if fpga.Points[1].Point.Speedup < 0.85*asic.Points[1].Point.Speedup {
		t.Errorf("32nm: FPGA %g should match ASIC %g under 90 GB/s",
			fpga.Points[1].Point.Speedup, asic.Points[1].Point.Speedup)
	}
}

// Scenario 1 for BS: the CMPs cannot reach the ceiling, so the HET gap
// persists (unlike FFT).
func TestScenario1BSGapPersists(t *testing.T) {
	ts := run(t, LowBandwidth, paper.BS, 0.9)
	asic := find(t, ts, "(6) ASIC")
	cmp := find(t, ts, "(1) AsymCMP")
	last := len(asic.Points) - 1
	ratio := asic.Points[last].Point.Speedup / cmp.Points[last].Point.Speedup
	if ratio < 1.5 {
		t.Errorf("BS ASIC/CMP at 11nm = %g, the paper's large gap should persist", ratio)
	}
	// The gap is qualitatively different from FFT, where the CMPs catch
	// the ASIC under the low ceiling.
	fts := run(t, LowBandwidth, paper.FFT1024, 0.9)
	fASIC := find(t, fts, "(6) ASIC")
	fCMP := find(t, fts, "(1) AsymCMP")
	fftRatio := fASIC.Points[last].Point.Speedup / fCMP.Points[last].Point.Speedup
	if ratio <= fftRatio {
		t.Errorf("BS gap (%g) should exceed FFT gap (%g) under 90 GB/s", ratio, fftRatio)
	}
}

// Scenario 2 (Figure 9): at 1 TB/s most FFT HETs become power-limited;
// at f=0.9 HETs gain ~2-3x over CMPs; the ASIC only shows ~2x over other
// HETs at f >= 0.999.
func TestScenario2HighBandwidth(t *testing.T) {
	ts := run(t, HighBandwidth, paper.FFT1024, 0.9)
	for _, label := range []string{"(2) LX760", "(3) GTX285", "(4) GTX480"} {
		tr := find(t, ts, label)
		last := tr.Points[len(tr.Points)-1]
		if last.Point.Limit != bounds.PowerLimited {
			t.Errorf("%s at 11nm under 1 TB/s: limit = %v, want power-limited",
				label, last.Point.Limit)
		}
	}
	hetGain := find(t, ts, "(2) LX760").Points[4].Point.Speedup /
		find(t, ts, "(1) AsymCMP").Points[4].Point.Speedup
	if hetGain < 1.5 || hetGain > 5 {
		t.Errorf("f=0.9 HET/CMP gain = %g, paper reports ~2-3x", hetGain)
	}
	// ASIC vs best flexible HET: modest at f=0.9, ~2x at f=0.999.
	asicOver := func(f float64) float64 {
		ts := run(t, HighBandwidth, paper.FFT1024, f)
		asic := find(t, ts, "(6) ASIC").Points[4].Point.Speedup
		best := 0.0
		for _, label := range []string{"(2) LX760", "(3) GTX285", "(4) GTX480"} {
			if s := find(t, ts, label).Points[4].Point.Speedup; s > best {
				best = s
			}
		}
		return asic / best
	}
	if g := asicOver(0.9); g > 1.6 {
		t.Errorf("f=0.9: ASIC over best HET = %g, should be modest", g)
	}
	if g := asicOver(0.999); g < 1.5 {
		t.Errorf("f=0.999: ASIC over best HET = %g, want ~2x", g)
	}
}

// Scenario 3: halving area hurts early nodes but the late nodes match the
// full-area results because power limits them anyway.
func TestScenario3HalfArea(t *testing.T) {
	base, alt, err := Compare(get(t, HalfArea), paper.FFT1024, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	b := find(t, base, "(2) LX760")
	a := find(t, alt, "(2) LX760")
	// 40nm: noticeably worse with half the area.
	if a.Points[0].Point.Speedup > 0.8*b.Points[0].Point.Speedup {
		t.Errorf("40nm: half-area %g vs full %g — early nodes should suffer",
			a.Points[0].Point.Speedup, b.Points[0].Point.Speedup)
	}
	// 16nm/11nm: within ~15% of the full budget.
	for i := 3; i < 5; i++ {
		ratio := a.Points[i].Point.Speedup / b.Points[i].Point.Speedup
		if ratio < 0.85 {
			t.Errorf("node %d: half-area ratio = %g, want ~1 (power-limited anyway)", i, ratio)
		}
	}
}

// Scenario 4: doubling power shrinks the HET advantage for FFT.
func TestScenario4DoublePowerShrinksGap(t *testing.T) {
	gap := func(id ID) float64 {
		ts := run(t, id, paper.FFT1024, 0.99)
		het := find(t, ts, "(3) GTX285").Points[4].Point.Speedup
		cmp := find(t, ts, "(1) AsymCMP").Points[4].Point.Speedup
		return het / cmp
	}
	if g200, g100 := gap(DoublePower), gap(Baseline); g200 >= g100 {
		t.Errorf("200 W gap %g should be below 100 W gap %g", g200, g100)
	}
}

// Scenario 5: at 10 W only the ASIC approaches the bandwidth ceiling; the
// flexible HETs stay power-limited. The 40nm node is infeasible (one BCE
// exceeds the budget).
func TestScenario5MobilePower(t *testing.T) {
	ts := run(t, MobilePower, paper.FFT1024, 0.9)
	asic := find(t, ts, "(6) ASIC")
	if asic.Points[0].Valid {
		t.Error("40nm at 10 W should be infeasible (BCE power > budget)")
	}
	last := len(asic.Points) - 1
	if !asic.Points[last].Valid {
		t.Fatal("11nm ASIC should be feasible")
	}
	if asic.Points[last].Point.Limit != bounds.BandwidthLimited {
		t.Errorf("ASIC at 11nm/10W: limit = %v, want bandwidth-limited",
			asic.Points[last].Point.Limit)
	}
	for _, label := range []string{"(2) LX760", "(3) GTX285", "(4) GTX480"} {
		tr := find(t, ts, label)
		if !tr.Points[last].Valid {
			t.Fatalf("%s infeasible at 11nm", label)
		}
		if tr.Points[last].Point.Limit != bounds.PowerLimited {
			t.Errorf("%s at 11nm/10W: limit = %v, want power-limited",
				label, tr.Points[last].Point.Limit)
		}
		if tr.Points[last].Point.Speedup >= asic.Points[last].Point.Speedup {
			t.Errorf("%s should trail the ASIC at 10 W", label)
		}
	}
}

// Scenario 6: harsher serial power law cuts speedups at f <= 0.9.
func TestScenario6SerialPower(t *testing.T) {
	base, alt, err := Compare(get(t, SerialPower), paper.FFT1024, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// The serial power bound binds at the early nodes, where the power
	// budget in BCE units is smallest (r <= P^(2/alpha)); by 11nm the
	// budget has grown enough that the bound no longer constrains the
	// r <= 16 sweep.
	for _, label := range []string{"(0) SymCMP", "(1) AsymCMP", "(6) ASIC"} {
		b := find(t, base, label).Points[0]
		a := find(t, alt, label).Points[0]
		if !b.Valid || !a.Valid {
			t.Fatalf("%s infeasible", label)
		}
		if a.Point.Speedup > b.Point.Speedup*0.95 {
			t.Errorf("%s: alpha=2.25 speedup %g should be well below baseline %g at 40nm",
				label, a.Point.Speedup, b.Point.Speedup)
		}
		// The optimal sequential core shrinks under the harsher law.
		if a.Point.R > b.Point.R {
			t.Errorf("%s: optimal r grew from %d to %d under alpha=2.25",
				label, b.Point.R, a.Point.R)
		}
	}
}

func TestCompareReturnsBothSets(t *testing.T) {
	base, alt, err := Compare(get(t, DoublePower), paper.MMM, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != len(alt) || len(base) == 0 {
		t.Errorf("trajectory set sizes: %d vs %d", len(base), len(alt))
	}
}
