package scenario

import (
	"math"
	"testing"

	"github.com/calcm/heterosim/internal/core"
	"github.com/calcm/heterosim/internal/paper"
	"github.com/calcm/heterosim/internal/project"
)

// traj builds a synthetic trajectory from (valid, speedup) samples.
func traj(label string, kind core.ChipKind, speedups ...float64) project.Trajectory {
	t := project.Trajectory{Design: core.Design{Kind: kind, Label: label}}
	for _, s := range speedups {
		p := project.NodePoint{Valid: !math.IsNaN(s)}
		if p.Valid {
			p.Point.Speedup = s
		}
		t.Points = append(t.Points, p)
	}
	for i := range t.Points {
		t.Points[i].Node.Name = []string{"45nm", "32nm", "22nm", "16nm", "11nm"}[i]
	}
	return t
}

var never = math.NaN()

func TestCrossovers(t *testing.T) {
	ts := []project.Trajectory{
		traj("(0) SymCMP", core.SymCMP, 2, 3, 4, 5, 6),
		traj("(1) AsymCMP", core.AsymCMP, 3, 4, 5, 6, 7),
		traj("fpga", core.Het, 1, 2, 6, 8, 9),    // overtakes sym at 22nm, asym at 22nm
		traj("asic", core.Het, 9, 9, 9, 9, 9),    // ahead from the first node
		traj("gpu", core.Het, 1, 1, 1, 1, 1),     // never overtakes
		traj("patchy", core.Het, never, 5, 5, 5, 5), // invalid nodes never count
	}
	got := Crossovers(ts)
	want := map[[2]string]int{
		{"fpga", "(0) SymCMP"}:    2,
		{"fpga", "(1) AsymCMP"}:   2,
		{"asic", "(0) SymCMP"}:    0,
		{"asic", "(1) AsymCMP"}:   0,
		{"gpu", "(0) SymCMP"}:     -1,
		{"gpu", "(1) AsymCMP"}:    -1,
		{"patchy", "(0) SymCMP"}:  1,
		{"patchy", "(1) AsymCMP"}: 1,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d crossovers, want %d: %+v", len(got), len(want), got)
	}
	for _, c := range got {
		wantIdx, ok := want[[2]string{c.Design, c.Over}]
		if !ok {
			t.Errorf("unexpected pair (%s over %s)", c.Design, c.Over)
			continue
		}
		if c.NodeIndex != wantIdx {
			t.Errorf("(%s over %s): NodeIndex = %d, want %d", c.Design, c.Over, c.NodeIndex, wantIdx)
		}
		if wantIdx == -1 && c.Node != "" {
			t.Errorf("(%s over %s): never-crossover has node %q", c.Design, c.Over, c.Node)
		}
		if wantIdx >= 0 && c.Node == "" {
			t.Errorf("(%s over %s): crossover at %d has no node name", c.Design, c.Over, wantIdx)
		}
	}
}

func TestDeltas(t *testing.T) {
	base := []project.Trajectory{
		traj("a", core.SymCMP, 2, 3),
		traj("b", core.Het, 4, never),
	}
	alt := []project.Trajectory{
		traj("a", core.SymCMP, 3, 3),
		traj("b", core.Het, 10, 12),
	}
	d := Deltas(base, alt)
	if len(d) != 2 || len(d[0]) != 2 {
		t.Fatalf("shape = %dx%d, want 2x2", len(d), len(d[0]))
	}
	if !d[0][0].Valid || d[0][0].Delta != 1 || d[0][0].Base != 2 || d[0][0].Alt != 3 {
		t.Errorf("d[0][0] = %+v", d[0][0])
	}
	if !d[0][1].Valid || d[0][1].Delta != 6 {
		t.Errorf("d[0][1] = %+v", d[0][1])
	}
	// b is infeasible in the baseline at node 1: the delta is undefined.
	if d[1][1].Valid {
		t.Errorf("d[1][1] valid despite infeasible baseline: %+v", d[1][1])
	}
	if d[1][0].Delta != 0 {
		t.Errorf("d[1][0].Delta = %v, want 0", d[1][0].Delta)
	}
}

// TestCrossoversOnRealProjection sanity-checks the helpers against a
// real scenario run: every (het, CMP) pair appears exactly once, and
// crossover indices point at a node where the het design really is
// ahead.
func TestCrossoversOnRealProjection(t *testing.T) {
	sc, err := Get(Baseline)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := Run(sc, paper.FFT1024, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	hets, cmps := 0, 0
	for _, tr := range ts {
		if tr.Design.Kind == core.Het {
			hets++
		} else {
			cmps++
		}
	}
	cs := Crossovers(ts)
	if len(cs) != hets*cmps {
		t.Fatalf("got %d crossovers, want %d (%d het x %d cmp)", len(cs), hets*cmps, hets, cmps)
	}
	byLabel := make(map[string]project.Trajectory, len(ts))
	for _, tr := range ts {
		byLabel[tr.Design.Label] = tr
	}
	for _, c := range cs {
		if c.NodeIndex < 0 {
			continue
		}
		h, o := byLabel[c.Design], byLabel[c.Over]
		hp, op := h.Points[c.NodeIndex], o.Points[c.NodeIndex]
		if !hp.Valid || !op.Valid || hp.Point.Speedup <= op.Point.Speedup {
			t.Errorf("(%s over %s) at %s: not actually ahead", c.Design, c.Over, c.Node)
		}
		if hp.Node.Name != c.Node {
			t.Errorf("(%s over %s): node name %q != index %d's %q", c.Design, c.Over, c.Node, c.NodeIndex, hp.Node.Name)
		}
	}
}
