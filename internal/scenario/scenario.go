// Package scenario implements the six alternative scaling scenarios of
// Section 6.2: each is a named transformation of the baseline projection
// configuration, approximating a different technology or market
// assumption (cheaper/disruptive memory interfaces, lower-cost dies,
// high-end cooling, mobile power envelopes, and power-hungrier sequential
// cores).
package scenario

import (
	"context"
	"fmt"

	"github.com/calcm/heterosim/internal/model"
	"github.com/calcm/heterosim/internal/paper"
	"github.com/calcm/heterosim/internal/pollack"
	"github.com/calcm/heterosim/internal/project"
)

// ID numbers the scenarios as the paper does (1-6). Zero is the baseline.
type ID int

// Scenario identifiers.
const (
	Baseline ID = iota
	LowBandwidth
	HighBandwidth
	HalfArea
	DoublePower
	MobilePower
	SerialPower
)

// Scenario is one Section 6.2 configuration transform.
type Scenario struct {
	ID          ID
	Name        string
	Rationale   string // why the paper studies it
	apply       func(project.Config) project.Config
	Expectation string // the paper's qualitative finding
}

// Apply returns cfg transformed by the scenario.
func (s Scenario) Apply(cfg project.Config) project.Config {
	if s.apply == nil {
		return cfg
	}
	return s.apply(cfg)
}

// All returns the baseline plus the six scenarios in paper order.
func All() []Scenario {
	return []Scenario{
		{
			ID: Baseline, Name: "baseline",
			Rationale:   "Table 6 assumptions: 432 mm², 100 W, 180 GB/s scaling per ITRS 2009",
			Expectation: "HETs need f >= 0.9 to pull away; ASIC FFT/BS bandwidth-limited throughout",
		},
		{
			ID: LowBandwidth, Name: "90 GB/s start",
			Rationale: "approximates a reduction in off-chip bandwidth costs (half of high-end 40nm)",
			apply: func(c project.Config) project.Config {
				c.BaseBandwidthGBs = 90
				return c
			},
			Expectation: "FPGAs/GPUs converge to ASIC performance a node earlier; for FFT the CMPs come within ~2x of the ASIC by 22nm",
		},
		{
			ID: HighBandwidth, Name: "1 TB/s start",
			Rationale: "approximates disruptive memory technologies (embedded DRAM, 3D stacking)",
			apply: func(c project.Config) project.Config {
				c.BaseBandwidthGBs = 1000
				return c
			},
			Expectation: "most designs become power-limited; at f=0.9 HETs gain ~2-3x over CMPs; ASIC only ~2x over other HETs at f >= 0.999",
		},
		{
			ID: HalfArea, Name: "216 mm² core area",
			Rationale: "approximates lower-cost manufacturing (higher yield)",
			apply: func(c project.Config) project.Config {
				c.AreaScale = 0.5
				return c
			},
			Expectation: "earlier nodes lose speedup (area-limited); at <= 22nm results match the full budget because power limits first",
		},
		{
			ID: DoublePower, Name: "200 W budget",
			Rationale: "approximates high-end cooling and power delivery",
			apply: func(c project.Config) project.Config {
				c.PowerBudgetW = 200
				return c
			},
			Expectation: "the relative benefit of energy-efficient HETs diminishes; CMPs close the gap, especially once HETs are bandwidth-limited",
		},
		{
			ID: MobilePower, Name: "10 W budget",
			Rationale: "approximates power-constrained laptops and mobiles",
			apply: func(c project.Config) project.Config {
				c.PowerBudgetW = 10
				return c
			},
			Expectation: "only ASIC-based HETs approach bandwidth-limited performance, a decisive advantage",
		},
		{
			ID: SerialPower, Name: "alpha = 2.25",
			Rationale: "approximates sequential cores whose power grows faster with performance",
			apply: func(c project.Config) project.Config {
				c.Alpha = pollack.ScenarioSixAlpha
				return c
			},
			Expectation: "speedups at f <= 0.9 drop significantly: the serial power bound caps the optimal sequential core size",
		},
	}
}

// Get returns the scenario with the given ID.
func Get(id ID) (Scenario, error) {
	for _, s := range All() {
		if s.ID == id {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("scenario: unknown scenario %d", int(id))
}

// Run projects a workload at parallel fraction f under the scenario
// with the default (GOMAXPROCS) worker pool.
func Run(s Scenario, w paper.WorkloadID, f float64) ([]project.Trajectory, error) {
	return RunWorkers(s, w, f, 0)
}

// RunWorkers is Run with an explicit worker-pool size for the projection
// (<= 0 means GOMAXPROCS). Results are identical at every worker count.
func RunWorkers(s Scenario, w paper.WorkloadID, f float64, workers int) ([]project.Trajectory, error) {
	return RunCtx(context.Background(), s, w, f, workers)
}

// RunCtx is RunWorkers bounded by ctx (nil = Background): cancellation
// aborts the projection between cells with ctx.Err().
func RunCtx(ctx context.Context, s Scenario, w paper.WorkloadID, f float64, workers int) ([]project.Trajectory, error) {
	return RunModelCtx(ctx, s, w, f, workers, nil)
}

// RunModelCtx is RunCtx under a model backend: mk selects the model
// evaluating every design x node cell (nil means the Chung baseline).
// The factory is applied after the scenario's configuration transform,
// so e.g. Scenario 6's alpha override reaches the backend.
func RunModelCtx(ctx context.Context, s Scenario, w paper.WorkloadID, f float64, workers int, mk model.Factory) ([]project.Trajectory, error) {
	cfg := s.Apply(project.DefaultConfig(w))
	cfg.Workers = workers
	cfg.Model = mk
	return project.ProjectCtx(ctx, cfg, f)
}

// Compare runs baseline and scenario side by side and returns both
// trajectory sets in that order.
func Compare(s Scenario, w paper.WorkloadID, f float64) (base, alt []project.Trajectory, err error) {
	return CompareWorkers(s, w, f, 0)
}

// CompareWorkers is Compare with an explicit worker-pool size (<= 0
// means GOMAXPROCS) threaded through both projections.
func CompareWorkers(s Scenario, w paper.WorkloadID, f float64, workers int) (base, alt []project.Trajectory, err error) {
	return CompareCtx(context.Background(), s, w, f, workers)
}

// CompareCtx is CompareWorkers bounded by ctx (nil = Background), so a
// request deadline covers both the baseline and alternative projections.
func CompareCtx(ctx context.Context, s Scenario, w paper.WorkloadID, f float64, workers int) (base, alt []project.Trajectory, err error) {
	return CompareModelCtx(ctx, s, w, f, workers, nil)
}

// CompareModelCtx is CompareCtx under a model backend (nil = Chung
// baseline): both the baseline and alternative projections run on the
// same backend, so the comparison isolates the scenario, not the model.
func CompareModelCtx(ctx context.Context, s Scenario, w paper.WorkloadID, f float64, workers int, mk model.Factory) (base, alt []project.Trajectory, err error) {
	baseScen, err := Get(Baseline)
	if err != nil {
		return nil, nil, err
	}
	base, err = RunModelCtx(ctx, baseScen, w, f, workers, mk)
	if err != nil {
		return nil, nil, err
	}
	alt, err = RunModelCtx(ctx, s, w, f, workers, mk)
	if err != nil {
		return nil, nil, err
	}
	return base, alt, nil
}
