package scenario

import (
	"github.com/calcm/heterosim/internal/core"
	"github.com/calcm/heterosim/internal/project"
)

// This file is the analysis layer over trajectory sets: the derived
// quantities the compare surfaces (POST /v1/compare, the heterosim
// compare subcommand) answer with. It is pure trajectory arithmetic —
// no serving or wire concerns — so the CLI and the daemon can never
// disagree about what a delta or a crossover is.

// Crossover marks the first roadmap node where one design overtakes
// another within a single trajectory set: the paper's "at which node
// does the FPGA overtake the asymmetric CMP?" question. NodeIndex is
// -1 (and Node empty) when the overtake never happens on the roadmap.
type Crossover struct {
	Design    string // the overtaking (heterogeneous) design's label
	Over      string // the overtaken (CMP baseline) design's label
	Node      string // node name of the first overtake, "" if never
	NodeIndex int    // roadmap index of the first overtake, -1 if never
}

// Crossovers scans a trajectory set node-by-node and reports, for every
// (heterogeneous design, CMP design) pair in set order, the first node
// where the heterogeneous design's speedup strictly exceeds the CMP's
// with both points valid. Every pair appears exactly once, so "never
// overtakes" is an explicit NodeIndex of -1, not an omission.
func Crossovers(ts []project.Trajectory) []Crossover {
	var out []Crossover
	for _, het := range ts {
		if het.Design.Kind != core.Het {
			continue
		}
		for _, cmp := range ts {
			if cmp.Design.Kind == core.Het {
				continue
			}
			c := Crossover{Design: het.Design.Label, Over: cmp.Design.Label, NodeIndex: -1}
			for i := range het.Points {
				hp, cp := het.Points[i], cmp.Points[i]
				if hp.Valid && cp.Valid && hp.Point.Speedup > cp.Point.Speedup {
					c.Node = hp.Node.Name
					c.NodeIndex = i
					break
				}
			}
			out = append(out, c)
		}
	}
	return out
}

// DesignDelta is one design's speedup difference at one node between a
// baseline and an alternative trajectory set. Valid requires the
// design's point to be feasible in both sets at that node; Base, Alt,
// and Delta are meaningless otherwise.
type DesignDelta struct {
	Label string
	Valid bool
	Base  float64 // baseline speedup
	Alt   float64 // alternative speedup
	Delta float64 // Alt - Base
}

// Deltas pairs two trajectory sets of the same lineup node-by-node:
// out[node][design] is the alternative-minus-baseline speedup delta.
// The sets must come from the same projection lineup (same designs,
// same roadmap), as CompareModelCtx guarantees.
func Deltas(base, alt []project.Trajectory) [][]DesignDelta {
	if len(base) == 0 || len(base) != len(alt) {
		return nil
	}
	nodes := len(base[0].Points)
	out := make([][]DesignDelta, nodes)
	for n := 0; n < nodes; n++ {
		row := make([]DesignDelta, 0, len(base))
		for d := range base {
			bp, ap := base[d].Points[n], alt[d].Points[n]
			dd := DesignDelta{Label: alt[d].Design.Label}
			if bp.Valid && ap.Valid {
				dd.Valid = true
				dd.Base = bp.Point.Speedup
				dd.Alt = ap.Point.Speedup
				dd.Delta = ap.Point.Speedup - bp.Point.Speedup
			}
			row = append(row, dd)
		}
		out[n] = row
	}
	return out
}
