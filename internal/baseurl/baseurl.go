// Package baseurl canonicalizes serving-endpoint base URLs. It is the
// single spelling authority shared by internal/client (Config.BaseURL),
// cmd/heterosim-loadgen (-addr), and the peer-list parsing in
// internal/servecache: every layer that compares, hashes, or dials a
// base URL goes through Normalize first, so "127.0.0.1:8080",
// "http://127.0.0.1:8080" and "http://127.0.0.1:8080/" are one
// endpoint everywhere — including inside the consistent-hash ring,
// where a spelling difference would silently split key ownership.
package baseurl

import (
	"fmt"
	"net/url"
	"sort"
	"strings"
)

// Normalize canonicalizes one base URL:
//
//   - bare "host:port" gains an "http://" scheme;
//   - "https://" (and explicit "http://") are preserved;
//   - trailing slashes are trimmed, so path-joining is always
//     base + "/v1/...";
//   - the host must be non-empty and the scheme http or https;
//   - query strings and fragments are rejected — a base URL names a
//     process, not a resource.
func Normalize(raw string) (string, error) {
	s := strings.TrimSpace(raw)
	if s == "" {
		return "", fmt.Errorf("baseurl: empty address")
	}
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	u, err := url.Parse(s)
	if err != nil {
		return "", fmt.Errorf("baseurl: %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("baseurl: %q: unsupported scheme %q (want http or https)", raw, u.Scheme)
	}
	if u.Host == "" {
		return "", fmt.Errorf("baseurl: %q: missing host", raw)
	}
	if u.RawQuery != "" || u.Fragment != "" || u.User != nil {
		return "", fmt.Errorf("baseurl: %q: base URLs must not carry query, fragment, or userinfo", raw)
	}
	path := strings.TrimRight(u.Path, "/")
	if path != "" && !strings.HasPrefix(path, "/") {
		return "", fmt.Errorf("baseurl: %q: malformed path %q", raw, u.Path)
	}
	return u.Scheme + "://" + u.Host + path, nil
}

// NormalizeList canonicalizes a comma-separated address list, rejecting
// duplicates (after normalization — two spellings of one endpoint are a
// config error, not two peers). Order is preserved; empty segments are
// skipped so trailing commas are harmless.
func NormalizeList(raw string) ([]string, error) {
	var out []string
	seen := make(map[string]bool)
	for _, part := range strings.Split(raw, ",") {
		if strings.TrimSpace(part) == "" {
			continue
		}
		u, err := Normalize(part)
		if err != nil {
			return nil, err
		}
		if seen[u] {
			return nil, fmt.Errorf("baseurl: duplicate address %q", u)
		}
		seen[u] = true
		out = append(out, u)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("baseurl: empty address list")
	}
	return out, nil
}

// Sorted returns a sorted copy: the canonical membership order used to
// build a consistent-hash ring, so every peer derives the identical
// ring no matter how its -peers flag was ordered.
func Sorted(urls []string) []string {
	out := append([]string(nil), urls...)
	sort.Strings(out)
	return out
}
