package baseurl

import (
	"strings"
	"testing"
)

func TestNormalize(t *testing.T) {
	cases := []struct {
		in, want string
		wantErr  bool
	}{
		{in: "127.0.0.1:8080", want: "http://127.0.0.1:8080"},
		{in: "http://127.0.0.1:8080", want: "http://127.0.0.1:8080"},
		{in: "https://example.com", want: "https://example.com"},
		{in: "https://example.com/", want: "https://example.com"},
		{in: "http://example.com///", want: "http://example.com"},
		{in: "http://example.com/base/", want: "http://example.com/base"},
		{in: "  host:80  ", want: "http://host:80"},
		{in: "localhost", want: "http://localhost"},
		{in: "", wantErr: true},
		{in: "   ", wantErr: true},
		{in: "http://", wantErr: true},              // empty host
		{in: "ftp://example.com", wantErr: true},    // scheme
		{in: "http://h/x?y=1", wantErr: true},       // query
		{in: "http://h/x#frag", wantErr: true},      // fragment
		{in: "http://user:pw@h:80", wantErr: true},  // userinfo
		{in: "http://host:port", wantErr: true},     // non-numeric port
		{in: "http://[::1]:8080", want: "http://[::1]:8080"},
	}
	for _, tc := range cases {
		got, err := Normalize(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("Normalize(%q) = %q, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("Normalize(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("Normalize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	for _, in := range []string{"127.0.0.1:9", "https://a.b/c/", "host", "http://h:1/p"} {
		once, err := Normalize(in)
		if err != nil {
			t.Fatalf("Normalize(%q): %v", in, err)
		}
		twice, err := Normalize(once)
		if err != nil {
			t.Fatalf("Normalize(%q): %v", once, err)
		}
		if once != twice {
			t.Errorf("not idempotent: %q -> %q -> %q", in, once, twice)
		}
	}
}

func TestNormalizeList(t *testing.T) {
	got, err := NormalizeList("b:1, a:2 ,http://c:3/,")
	if err != nil {
		t.Fatalf("NormalizeList: %v", err)
	}
	want := []string{"http://b:1", "http://a:2", "http://c:3"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("NormalizeList = %v, want %v", got, want)
	}

	if _, err := NormalizeList("a:1,http://a:1"); err == nil {
		t.Error("NormalizeList accepted duplicate spellings of one endpoint")
	}
	if _, err := NormalizeList(" , ,"); err == nil {
		t.Error("NormalizeList accepted an empty list")
	}
	if _, err := NormalizeList("a:1,http://"); err == nil {
		t.Error("NormalizeList accepted an empty host")
	}
}

func TestSorted(t *testing.T) {
	in := []string{"http://c:1", "http://a:1", "http://b:1"}
	got := Sorted(in)
	if got[0] != "http://a:1" || got[1] != "http://b:1" || got[2] != "http://c:1" {
		t.Errorf("Sorted = %v", got)
	}
	if in[0] != "http://c:1" {
		t.Error("Sorted mutated its input")
	}
}
