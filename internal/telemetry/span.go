package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"
)

// ctxKey keys the context values this package owns.
type ctxKey int

const (
	stagesKey ctxKey = iota
	requestIDKey
)

// WithStages attaches a stage-duration family to the context, so code
// downstream of a handler (the cache, the admission gate, the sweep
// engine) can record spans without holding a reference to the server.
func WithStages(ctx context.Context, f *Family) context.Context {
	if f == nil {
		return ctx
	}
	return context.WithValue(ctx, stagesKey, f)
}

// StagesFrom returns the context's stage family, or nil when none was
// attached (spans become no-ops).
func StagesFrom(ctx context.Context) *Family {
	if ctx == nil {
		return nil
	}
	f, _ := ctx.Value(stagesKey).(*Family)
	return f
}

// Span measures one pipeline stage. The zero value (and any Span from a
// context without a stage family) is a no-op, so instrumented code
// needs no nil checks.
type Span struct {
	fam   *Family
	stage string
	start time.Time
}

// StartSpan begins timing the named stage against the context's stage
// family. Call End exactly once; End on a no-op span is safe.
func StartSpan(ctx context.Context, stage string) Span {
	f := StagesFrom(ctx)
	if f == nil {
		return Span{}
	}
	return Span{fam: f, stage: stage, start: time.Now()}
}

// End records the span's elapsed time.
func (s Span) End() {
	if s.fam == nil {
		return
	}
	s.fam.Observe(s.stage, time.Since(s.start))
}

// HeaderRequestID is the canonical request-ID header.
const HeaderRequestID = "X-Request-ID"

// reqSeq disambiguates IDs minted when the entropy source fails.
var reqSeq atomic.Int64

// NewRequestID mints a 16-hex-char request ID. IDs are opaque — their
// only contract is uniqueness-in-practice and log-friendliness.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is effectively unreachable; fall back to a
		// monotonic counter rather than panicking in a request path.
		return fmt.Sprintf("seq-%013d", reqSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// maxRequestIDLen bounds accepted client-supplied IDs so a hostile
// header cannot bloat every log line.
const maxRequestIDLen = 64

// SanitizeRequestID validates a client-supplied request ID: printable
// ASCII without spaces or quotes, at most 64 bytes. Anything else
// returns "" (mint a fresh one instead).
func SanitizeRequestID(id string) string {
	if id == "" || len(id) > maxRequestIDLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return ""
		}
	}
	return id
}

// WithRequestID attaches a request ID to the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the context's request ID, or "".
func RequestID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}
