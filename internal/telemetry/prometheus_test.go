package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestWritePrometheusExposition(t *testing.T) {
	r := NewRegistry()
	stages := r.Family("stage_duration_seconds", "stage")
	stages.Observe("decode", 3*time.Microsecond) // bucket le=4e-06
	stages.Observe("decode", 500*time.Microsecond)

	var sb strings.Builder
	if err := WritePrometheus(&sb, "heterosimd", r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE heterosimd_stage_duration_seconds histogram\n",
		`heterosimd_stage_duration_seconds_bucket{stage="decode",le="1e-06"} 0` + "\n",
		`heterosimd_stage_duration_seconds_bucket{stage="decode",le="4e-06"} 1` + "\n",
		`heterosimd_stage_duration_seconds_bucket{stage="decode",le="+Inf"} 2` + "\n",
		`heterosimd_stage_duration_seconds_count{stage="decode"} 2` + "\n",
		`heterosimd_stage_duration_seconds_sum{stage="decode"} 0.000503` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Buckets must be cumulative: every le line's value is monotonically
	// non-decreasing down the series.
	var prev int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "_bucket{") {
			continue
		}
		var v int64
		if _, err := fmtSscan(line, &v); err != nil {
			t.Fatalf("unparsable bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		prev = v
	}
}

// fmtSscan pulls the trailing integer off a sample line.
func fmtSscan(line string, v *int64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	n, err := parseInt(line[i+1:])
	*v = n
	return 1, err
}

func parseInt(s string) (int64, error) {
	var n int64
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, &parseError{s}
		}
		n = n*10 + int64(s[i]-'0')
	}
	return n, nil
}

type parseError struct{ s string }

func (e *parseError) Error() string { return "not an integer: " + e.s }

func TestWriteCounterAndGauge(t *testing.T) {
	var sb strings.Builder
	if err := WriteType(&sb, "x_total", "counter"); err != nil {
		t.Fatal(err)
	}
	if err := WriteCounter(&sb, "x_total", "endpoint", "optimize", 7); err != nil {
		t.Fatal(err)
	}
	if err := WriteCounter(&sb, "y_total", "", "", 3); err != nil {
		t.Fatal(err)
	}
	if err := WriteGaugeFloat(&sb, "z_seconds", 1.5); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE x_total counter\n" +
		`x_total{endpoint="optimize"} 7` + "\n" +
		"y_total 3\nz_seconds 1.5\n"
	if sb.String() != want {
		t.Errorf("got:\n%s\nwant:\n%s", sb.String(), want)
	}
}
