package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryFamilyAndSnapshotOrder(t *testing.T) {
	r := NewRegistry()
	req := r.Family("request_duration_seconds", "endpoint")
	stage := r.Family("stage_duration_seconds", "stage")
	if again := r.Family("request_duration_seconds", "other"); again != req {
		t.Fatal("re-registration must return the original family")
	}
	stage.Observe("gate", time.Millisecond)
	stage.Observe("decode", time.Millisecond)
	stage.Observe("evaluate", time.Millisecond)
	req.Observe("optimize", time.Millisecond)

	snaps := r.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("got %d families, want 2", len(snaps))
	}
	// Families in creation order, series sorted by label.
	if snaps[0].Name != "request_duration_seconds" || snaps[1].Name != "stage_duration_seconds" {
		t.Errorf("family order: %s, %s", snaps[0].Name, snaps[1].Name)
	}
	var labels []string
	for _, s := range snaps[1].Series {
		labels = append(labels, s.Label)
	}
	if strings.Join(labels, ",") != "decode,evaluate,gate" {
		t.Errorf("series labels = %v, want sorted", labels)
	}
	if snaps[1].LabelKey != "stage" {
		t.Errorf("label key = %q", snaps[1].LabelKey)
	}
}

func TestRegistryConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			f := r.Family("stage_duration_seconds", "stage")
			for i := 0; i < 500; i++ {
				f.Observe([]string{"decode", "cache", "gate"}[i%3], time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	snap := r.Family("stage_duration_seconds", "stage").Snapshot()
	var total int64
	for _, s := range snap.Series {
		total += s.Hist.Count
	}
	if total != 8*500 {
		t.Fatalf("total observations = %d, want 4000", total)
	}
}

func TestSpanThroughContext(t *testing.T) {
	r := NewRegistry()
	stages := r.Family("stage_duration_seconds", "stage")
	ctx := WithStages(context.Background(), stages)

	sp := StartSpan(ctx, "decode")
	time.Sleep(time.Millisecond)
	sp.End()

	snap := stages.Snapshot()
	if len(snap.Series) != 1 || snap.Series[0].Label != "decode" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if h := snap.Series[0].Hist; h.Count != 1 || h.Sum < time.Millisecond {
		t.Errorf("span recorded %d obs, sum %v", h.Count, h.Sum)
	}

	// Spans without a family (plain context, nil context) are no-ops.
	StartSpan(context.Background(), "x").End()
	var nilCtx context.Context
	StartSpan(nilCtx, "x").End()
	Span{}.End()
	if StagesFrom(context.Background()) != nil || StagesFrom(nilCtx) != nil {
		t.Error("StagesFrom on bare context must be nil")
	}
	// WithStages(nil family) must not poison the context.
	if StagesFrom(WithStages(context.Background(), nil)) != nil {
		t.Error("WithStages(nil) must stay a no-op context")
	}
}

func TestRequestIDHelpers(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b || len(a) != 16 || len(b) != 16 {
		t.Errorf("minted IDs %q, %q should be distinct 16-char strings", a, b)
	}
	ctx := WithRequestID(context.Background(), "abc-123")
	if got := RequestID(ctx); got != "abc-123" {
		t.Errorf("RequestID = %q", got)
	}
	if RequestID(context.Background()) != "" || RequestID(nil) != "" {
		t.Error("missing ID must be empty")
	}
	if WithRequestID(context.Background(), "") != context.Background() {
		t.Error("empty ID must not allocate a context")
	}

	valid := []string{"abc", "ABC-123_x.y", strings.Repeat("a", 64)}
	for _, id := range valid {
		if SanitizeRequestID(id) != id {
			t.Errorf("SanitizeRequestID(%q) rejected a valid ID", id)
		}
	}
	invalid := []string{"", strings.Repeat("a", 65), "has space", "tab\there", `quote"id`, `back\slash`, "ctrl\x01"}
	for _, id := range invalid {
		if got := SanitizeRequestID(id); got != "" {
			t.Errorf("SanitizeRequestID(%q) = %q, want rejection", id, got)
		}
	}
}
