// Package telemetry is the serving stack's observability kit: fixed-
// bucket latency histograms (lock-striped, safe under -race), a registry
// of labelled histogram families, a Span-style API for per-stage timing
// threaded through context, request-ID propagation, and a Prometheus
// text-exposition writer. It depends only on the standard library.
//
// The design follows the same discipline as the rest of the serving
// layer: no external dependencies, deterministic snapshot ordering (so
// goldens can pin metric names and labels), and cheap enough on the hot
// path — one atomic add per observation — that instrumentation is
// always on.
package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of finite histogram buckets. Boundaries
// double from 1µs, so the last finite bucket ends at 2^27 µs ≈ 134 s —
// wider than any request the server would let live. One overflow bucket
// follows.
const NumBuckets = 28

// numStripes spreads observations across independent cache lines so
// concurrent recorders do not serialize on one counter word. Must be a
// power of two.
const numStripes = 8

// bucketNanos[i] is the inclusive upper bound of bucket i.
var bucketNanos = func() [NumBuckets]int64 {
	var b [NumBuckets]int64
	for i := range b {
		b[i] = 1000 << uint(i)
	}
	return b
}()

// BucketBounds returns the finite bucket upper bounds (ascending). The
// slice is a copy; callers may keep it.
func BucketBounds() []time.Duration {
	out := make([]time.Duration, NumBuckets)
	for i, n := range bucketNanos {
		out[i] = time.Duration(n)
	}
	return out
}

// bucketFor maps a duration to its bucket index (NumBuckets = overflow).
func bucketFor(d time.Duration) int {
	n := int64(d)
	if n < 0 {
		n = 0
	}
	for i, bound := range bucketNanos {
		if n <= bound {
			return i
		}
	}
	return NumBuckets
}

// stripe is one lock domain of a histogram: its own bucket counters and
// running sum, padded onto separate cache lines from its neighbours.
type stripe struct {
	counts   [NumBuckets + 1]atomic.Int64
	sumNanos atomic.Int64
	_        [64]byte // keep neighbouring stripes off this cache line
}

// Histogram is a fixed-bucket latency histogram. The zero value is
// ready to use; it is safe for concurrent Observe and Snapshot.
type Histogram struct {
	stripes [numStripes]stripe
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one duration. Negative durations clamp to zero. The
// stripe is picked by mixing the duration's own low bits (nanosecond
// timings are effectively random there), so concurrent recorders spread
// across stripes without any shared state.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s := &h.stripes[(uint64(d)*0x9E3779B97F4A7C15)>>61&(numStripes-1)]
	s.counts[bucketFor(d)].Add(1)
	s.sumNanos.Add(int64(d))
}

// Snapshot sums the stripes into a point-in-time view. Concurrent
// observations may land in either side of the cut; each observation is
// counted exactly once.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var snap HistogramSnapshot
	snap.Counts = make([]int64, NumBuckets+1)
	for i := range h.stripes {
		s := &h.stripes[i]
		for b := range s.counts {
			snap.Counts[b] += s.counts[b].Load()
		}
		snap.Sum += time.Duration(s.sumNanos.Load())
	}
	for _, c := range snap.Counts {
		snap.Count += c
	}
	return snap
}

// HistogramSnapshot is an immutable view of a histogram: per-bucket
// counts (the last entry is the overflow bucket), total count, and the
// sum of all observed durations.
type HistogramSnapshot struct {
	Counts []int64
	Count  int64
	Sum    time.Duration
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket the rank falls in. With no observations it returns
// 0 — never NaN. The estimate always lies inside the bucket containing
// the true quantile, so it brackets the truth to one bucket's width.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo := int64(0)
			if i > 0 {
				lo = bucketNanos[i-1]
			}
			if i >= NumBuckets {
				// Overflow: no finite upper bound to interpolate toward;
				// report the last finite boundary (a lower bound on truth).
				return time.Duration(bucketNanos[NumBuckets-1])
			}
			hi := bucketNanos[i]
			frac := float64(rank-cum) / float64(c)
			return time.Duration(float64(lo) + frac*float64(hi-lo))
		}
		cum += c
	}
	return time.Duration(bucketNanos[NumBuckets-1])
}

// Mean returns the average observed duration, 0 when empty.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}
