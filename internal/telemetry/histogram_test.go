package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestBucketBoundsDoubleFromOneMicrosecond(t *testing.T) {
	bounds := BucketBounds()
	if len(bounds) != NumBuckets {
		t.Fatalf("got %d bounds, want %d", len(bounds), NumBuckets)
	}
	if bounds[0] != time.Microsecond {
		t.Errorf("first bound = %v, want 1µs", bounds[0])
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] != 2*bounds[i-1] {
			t.Errorf("bound %d = %v, want double of %v", i, bounds[i], bounds[i-1])
		}
	}
	if last := bounds[len(bounds)-1]; last < 2*time.Minute {
		t.Errorf("last bound %v should exceed any plausible request", last)
	}
}

func TestBucketForEdges(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-time.Second, 0}, // clamps
		{0, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{time.Duration(bucketNanos[NumBuckets-1]), NumBuckets - 1},
		{time.Duration(bucketNanos[NumBuckets-1]) + 1, NumBuckets}, // overflow
		{24 * time.Hour, NumBuckets},
	}
	for _, c := range cases {
		if got := bucketFor(c.d); got != c.want {
			t.Errorf("bucketFor(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestZeroObservations: the empty histogram must answer every quantile
// with 0 — no NaN, no panic, no division by zero.
func TestZeroObservations(t *testing.T) {
	snap := NewHistogram().Snapshot()
	if snap.Count != 0 || snap.Sum != 0 {
		t.Fatalf("empty snapshot: %+v", snap)
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1, -1, 2, math.NaN()} {
		got := snap.Quantile(q)
		if got != 0 {
			t.Errorf("Quantile(%v) on empty = %v, want 0", q, got)
		}
	}
	if snap.Mean() != 0 {
		t.Errorf("Mean on empty = %v, want 0", snap.Mean())
	}
	// A zero-value HistogramSnapshot (nil Counts) must be equally safe.
	var zero HistogramSnapshot
	if zero.Quantile(0.99) != 0 {
		t.Error("zero-value snapshot Quantile must be 0")
	}
}

// trueQuantileBucket locates the bucket holding the empirical
// q-quantile of samples (rank = ceil(q*n), 1-based), returning that
// bucket's bounds.
func trueQuantileBucket(samples []time.Duration, q float64) (lo, hi time.Duration) {
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	truth := sorted[rank-1]
	b := bucketFor(truth)
	if b > 0 {
		lo = time.Duration(bucketNanos[b-1])
	}
	if b < NumBuckets {
		hi = time.Duration(bucketNanos[b])
	} else {
		hi = 1<<63 - 1
	}
	return lo, hi
}

// TestQuantileBracketsTruth is the histogram's correctness property:
// for samples from several known distributions, every estimated
// quantile must land inside the bucket that contains the true empirical
// quantile — the estimate brackets the truth to one bucket's width.
func TestQuantileBracketsTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	distributions := map[string]func() time.Duration{
		"uniform-1ms": func() time.Duration {
			return time.Duration(rng.Int63n(int64(time.Millisecond))) + 1
		},
		"exponential-100us": func() time.Duration {
			return time.Duration(rng.ExpFloat64() * float64(100*time.Microsecond))
		},
		"bimodal": func() time.Duration {
			if rng.Float64() < 0.8 {
				return time.Duration(rng.Int63n(int64(50 * time.Microsecond)))
			}
			return time.Duration(rng.Int63n(int64(time.Second)))
		},
		"constant": func() time.Duration { return 123 * time.Microsecond },
	}
	for name, draw := range distributions {
		t.Run(name, func(t *testing.T) {
			h := NewHistogram()
			samples := make([]time.Duration, 5000)
			for i := range samples {
				samples[i] = draw()
				h.Observe(samples[i])
			}
			snap := h.Snapshot()
			if snap.Count != int64(len(samples)) {
				t.Fatalf("count = %d, want %d", snap.Count, len(samples))
			}
			var wantSum time.Duration
			for _, s := range samples {
				wantSum += s
			}
			if snap.Sum != wantSum {
				t.Errorf("sum = %v, want %v", snap.Sum, wantSum)
			}
			for _, q := range []float64{0.5, 0.9, 0.99} {
				est := snap.Quantile(q)
				lo, hi := trueQuantileBucket(samples, q)
				if est < lo || est > hi {
					t.Errorf("q=%v: estimate %v outside true bucket [%v, %v]", q, est, lo, hi)
				}
			}
		})
	}
}

// TestConcurrentRecording hammers one histogram from many goroutines
// while snapshots run concurrently; under -race this proves the striped
// counters are safe, and the final snapshot must account for every
// observation exactly once.
func TestConcurrentRecording(t *testing.T) {
	const (
		goroutines = 16
		perG       = 2000
	)
	h := NewHistogram()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() { // concurrent reader
		for {
			select {
			case <-stop:
				return
			default:
				h.Snapshot().Quantile(0.99)
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(rng.Int63n(int64(10 * time.Millisecond))))
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	snap := h.Snapshot()
	if snap.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d (lost or double-counted observations)", snap.Count, goroutines*perG)
	}
	var sum int64
	for _, c := range snap.Counts {
		sum += c
	}
	if sum != snap.Count {
		t.Fatalf("bucket sum %d != count %d", sum, snap.Count)
	}
}

func TestMeanAndOverflow(t *testing.T) {
	h := NewHistogram()
	h.Observe(2 * time.Millisecond)
	h.Observe(4 * time.Millisecond)
	snap := h.Snapshot()
	if snap.Mean() != 3*time.Millisecond {
		t.Errorf("mean = %v, want 3ms", snap.Mean())
	}
	// Overflow observations keep quantiles finite.
	h2 := NewHistogram()
	for i := 0; i < 10; i++ {
		h2.Observe(24 * time.Hour)
	}
	q := h2.Snapshot().Quantile(0.99)
	if q != time.Duration(bucketNanos[NumBuckets-1]) {
		t.Errorf("overflow quantile = %v, want last finite bound %v", q, time.Duration(bucketNanos[NumBuckets-1]))
	}
}
