package telemetry

import (
	"sort"
	"sync"
	"time"
)

// Family is one named histogram metric with a single label dimension
// (e.g. request duration by endpoint, stage duration by stage). Safe
// for concurrent use.
type Family struct {
	name     string
	labelKey string

	mu     sync.RWMutex
	series map[string]*Histogram
}

// Name returns the metric name.
func (f *Family) Name() string { return f.name }

// LabelKey returns the label dimension's key.
func (f *Family) LabelKey() string { return f.labelKey }

// Histogram returns the histogram for one label value, creating it on
// first use.
func (f *Family) Histogram(label string) *Histogram {
	f.mu.RLock()
	h, ok := f.series[label]
	f.mu.RUnlock()
	if ok {
		return h
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if h, ok = f.series[label]; ok {
		return h
	}
	h = NewHistogram()
	f.series[label] = h
	return h
}

// Observe records one duration under the label.
func (f *Family) Observe(label string, d time.Duration) {
	f.Histogram(label).Observe(d)
}

// Snapshot captures every series, sorted by label for deterministic
// rendering.
func (f *Family) Snapshot() FamilySnapshot {
	f.mu.RLock()
	labels := make([]string, 0, len(f.series))
	for l := range f.series {
		labels = append(labels, l)
	}
	hists := make([]*Histogram, 0, len(labels))
	sort.Strings(labels)
	for _, l := range labels {
		hists = append(hists, f.series[l])
	}
	f.mu.RUnlock()
	snap := FamilySnapshot{Name: f.name, LabelKey: f.labelKey}
	for i, l := range labels {
		snap.Series = append(snap.Series, SeriesSnapshot{Label: l, Hist: hists[i].Snapshot()})
	}
	return snap
}

// FamilySnapshot is a point-in-time view of one family.
type FamilySnapshot struct {
	Name     string
	LabelKey string
	Series   []SeriesSnapshot
}

// SeriesSnapshot is one labelled histogram's snapshot.
type SeriesSnapshot struct {
	Label string
	Hist  HistogramSnapshot
}

// Registry holds histogram families. Safe for concurrent use; families
// are created on first reference and snapshot in creation order.
type Registry struct {
	mu       sync.Mutex
	families []*Family
	byName   map[string]*Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Family)}
}

// Family returns the named family, creating it with the label key on
// first use. A later call with a different label key returns the
// original family unchanged — the first registration wins.
func (r *Registry) Family(name, labelKey string) *Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		return f
	}
	f := &Family{name: name, labelKey: labelKey, series: make(map[string]*Histogram)}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// Snapshot captures every family in creation order.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.Lock()
	fams := make([]*Family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		out = append(out, f.Snapshot())
	}
	return out
}
