package telemetry

import (
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders histogram family snapshots in Prometheus text
// exposition format (cumulative buckets, _sum and _count, seconds).
// Metric names become namespace_name; series appear in snapshot order,
// which Registry.Snapshot makes deterministic — goldens can pin the
// exact name/label lines.
func WritePrometheus(w io.Writer, namespace string, snaps []FamilySnapshot) error {
	for _, fam := range snaps {
		name := fam.Name
		if namespace != "" {
			name = namespace + "_" + fam.Name
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		for _, s := range fam.Series {
			var cum int64
			for i, bound := range bucketNanos {
				var c int64
				if i < len(s.Hist.Counts) {
					c = s.Hist.Counts[i]
				}
				cum += c
				if _, err := fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n",
					name, fam.LabelKey, s.Label, formatSeconds(float64(bound)/1e9), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n",
				name, fam.LabelKey, s.Label, s.Hist.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum{%s=%q} %s\n",
				name, fam.LabelKey, s.Label, formatSeconds(s.Hist.Sum.Seconds())); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count{%s=%q} %d\n",
				name, fam.LabelKey, s.Label, s.Hist.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatSeconds renders a float the way Prometheus clients conventionally
// do: shortest representation that round-trips.
func formatSeconds(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteCounter renders one counter/gauge sample line, with an optional
// single label.
func WriteCounter(w io.Writer, name, labelKey, labelValue string, value int64) error {
	if labelKey == "" {
		_, err := fmt.Fprintf(w, "%s %d\n", name, value)
		return err
	}
	_, err := fmt.Fprintf(w, "%s{%s=%q} %d\n", name, labelKey, labelValue, value)
	return err
}

// WriteGaugeFloat renders one float-valued sample line.
func WriteGaugeFloat(w io.Writer, name string, value float64) error {
	_, err := fmt.Fprintf(w, "%s %s\n", name, formatSeconds(value))
	return err
}

// WriteType renders a # TYPE line.
func WriteType(w io.Writer, name, kind string) error {
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
	return err
}
