// Package metrics implements the energy-oriented Amdahl's-law extensions
// the paper builds on and cites as related work (Section 2.3):
//
//   - Woo & Lee, "Extending Amdahl's Law for Energy-Efficient Computing
//     in the Many-Core Era": average power W, performance per watt, and
//     performance per joule for multicores whose idle cores draw a
//     fraction k of active power.
//   - Eyerman & Eeckhout, "Modeling Critical Sections in Amdahl's Law":
//     parallel speedup when a fraction of the parallel work executes in
//     contended critical sections.
//
// Together with the U-core variants added here, they supply the
// energy-efficiency vocabulary (perf/W, energy-delay) used when the
// paper argues U-cores are "more broadly useful when power or energy
// reduction is the goal".
package metrics

import (
	"errors"
	"math"
)

// Errors shared by the metric models.
var (
	ErrFraction = errors.New("metrics: fraction must be in [0, 1]")
	ErrCores    = errors.New("metrics: core count must be >= 1")
	ErrIdle     = errors.New("metrics: idle fraction k must be in [0, 1]")
)

// WooLee models a symmetric multicore of n identical cores where an
// active core consumes power 1 and an idle core consumes k (0 = perfect
// power gating, 1 = no gating at all).
type WooLee struct {
	N int     // cores
	K float64 // idle power as a fraction of active power
}

// Validate reports an error for malformed parameters.
func (m WooLee) Validate() error {
	if m.N < 1 {
		return ErrCores
	}
	if m.K < 0 || m.K > 1 || math.IsNaN(m.K) {
		return ErrIdle
	}
	return nil
}

// Time returns normalized execution time at parallel fraction f
// (relative to one core running everything).
func (m WooLee) Time(f float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if f < 0 || f > 1 || math.IsNaN(f) {
		return 0, ErrFraction
	}
	return (1 - f) + f/float64(m.N), nil
}

// Energy returns normalized energy: sequential phase runs one active core
// with n-1 idling; the parallel phase runs all n active.
func (m WooLee) Energy(f float64) (float64, error) {
	t, err := m.Time(f)
	if err != nil {
		return 0, err
	}
	_ = t
	n := float64(m.N)
	seq := (1 - f) * (1 + (n-1)*m.K)
	par := f // n cores at power n for time f/n
	return seq + par, nil
}

// AveragePower returns W = Energy / Time.
func (m WooLee) AveragePower(f float64) (float64, error) {
	e, err := m.Energy(f)
	if err != nil {
		return 0, err
	}
	t, err := m.Time(f)
	if err != nil {
		return 0, err
	}
	return e / t, nil
}

// PerfPerWatt returns performance per watt relative to the single core:
// (1/T)/W = 1/E. Woo & Lee's central observation: perf/W of a symmetric
// many-core can never exceed the single core's unless idle power is
// zero and f = 1.
func (m WooLee) PerfPerWatt(f float64) (float64, error) {
	e, err := m.Energy(f)
	if err != nil {
		return 0, err
	}
	return 1 / e, nil
}

// PerfPerJoule returns performance per joule = 1/(T·E), the
// energy-delay-product reciprocal Woo & Lee also consider.
func (m WooLee) PerfPerJoule(f float64) (float64, error) {
	e, err := m.Energy(f)
	if err != nil {
		return 0, err
	}
	t, err := m.Time(f)
	if err != nil {
		return 0, err
	}
	return 1 / (t * e), nil
}

// WooLeeUCore extends the Woo-Lee accounting to a heterogeneous chip in
// the paper's style: a sequential core of size r (Pollack laws) plus
// n-r BCE of U-core fabric (mu, phi), with idle fabric drawing fraction
// k of its active power during sequential phases and the sequential core
// fully gated during parallel phases (asymmetric-offload assumption).
type WooLeeUCore struct {
	N   float64 // total BCE resources
	R   float64 // sequential core size
	Mu  float64
	Phi float64
	K   float64 // idle power fraction
	// Alpha is the sequential power exponent (1.75 in the paper).
	Alpha float64
}

// Validate reports an error for malformed parameters.
func (m WooLeeUCore) Validate() error {
	switch {
	case m.N <= 0 || m.R < 1 || m.R >= m.N:
		return errors.New("metrics: need n > r >= 1")
	case m.Mu <= 0 || m.Phi <= 0:
		return errors.New("metrics: mu and phi must be positive")
	case m.K < 0 || m.K > 1:
		return ErrIdle
	case m.Alpha <= 0:
		return errors.New("metrics: alpha must be positive")
	}
	return nil
}

// Time returns normalized execution time at parallel fraction f.
func (m WooLeeUCore) Time(f float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if f < 0 || f > 1 || math.IsNaN(f) {
		return 0, ErrFraction
	}
	return (1-f)/math.Sqrt(m.R) + f/(m.Mu*(m.N-m.R)), nil
}

// Energy returns normalized task energy. Sequential phase: the fast core
// at r^(alpha/2) plus idle fabric at k·phi·(n-r). Parallel phase: fabric
// at phi·(n-r) with the fast core gated.
func (m WooLeeUCore) Energy(f float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if f < 0 || f > 1 || math.IsNaN(f) {
		return 0, ErrFraction
	}
	seqPower := math.Pow(m.R, m.Alpha/2) + m.K*m.Phi*(m.N-m.R)
	seqTime := (1 - f) / math.Sqrt(m.R)
	parPower := m.Phi * (m.N - m.R)
	parTime := f / (m.Mu * (m.N - m.R))
	return seqPower*seqTime + parPower*parTime, nil
}

// PerfPerWatt returns (1/T)/(E/T) = 1/E relative to one BCE at power 1.
func (m WooLeeUCore) PerfPerWatt(f float64) (float64, error) {
	e, err := m.Energy(f)
	if err != nil {
		return 0, err
	}
	return 1 / e, nil
}

// EnergyDelay returns the energy-delay product E·T (lower is better).
func (m WooLeeUCore) EnergyDelay(f float64) (float64, error) {
	e, err := m.Energy(f)
	if err != nil {
		return 0, err
	}
	t, err := m.Time(f)
	if err != nil {
		return 0, err
	}
	return e * t, nil
}

// CriticalSections is Eyerman & Eeckhout's refinement of Amdahl's law: a
// fraction fSeq of the program is sequential; of the parallel remainder,
// a fraction fCrit executes inside critical sections that contend with
// probability PCtn (0 = never contended, executes at full parallelism;
// 1 = fully serialized).
type CriticalSections struct {
	FSeq  float64
	FCrit float64
	PCtn  float64
	N     int
}

// Validate reports an error for malformed parameters.
func (c CriticalSections) Validate() error {
	for _, v := range []float64{c.FSeq, c.FCrit, c.PCtn} {
		if v < 0 || v > 1 || math.IsNaN(v) {
			return ErrFraction
		}
	}
	if c.N < 1 {
		return ErrCores
	}
	return nil
}

// Speedup returns the critical-section-aware speedup on n cores:
//
//	T = fSeq + fPar·(1-fCrit)/n + fPar·fCrit·[(1-PCtn)/n + PCtn]
//
// interpolating critical-section time between fully parallel and fully
// serialized by the contention probability.
func (c CriticalSections) Speedup() (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	fPar := 1 - c.FSeq
	n := float64(c.N)
	crit := fPar * c.FCrit * ((1-c.PCtn)/n + c.PCtn)
	t := c.FSeq + fPar*(1-c.FCrit)/n + crit
	return 1 / t, nil
}

// EffectiveF returns the parallel fraction a plain Amdahl model would
// need to predict the same speedup at the same n — how much parallelism
// critical sections "destroy". Returns an error when n == 1 (any f fits).
func (c CriticalSections) EffectiveF() (float64, error) {
	s, err := c.Speedup()
	if err != nil {
		return 0, err
	}
	if c.N == 1 {
		return 0, errors.New("metrics: effective f undefined at n=1")
	}
	n := float64(c.N)
	// Solve 1/s = (1-f) + f/n for f.
	f := (1 - 1/s) / (1 - 1/n)
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return f, nil
}
