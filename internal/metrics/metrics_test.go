package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWooLeeValidate(t *testing.T) {
	if err := (WooLee{N: 4, K: 0.3}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (WooLee{N: 0, K: 0.3}).Validate(); err != ErrCores {
		t.Errorf("want ErrCores, got %v", err)
	}
	if err := (WooLee{N: 4, K: 1.5}).Validate(); err != ErrIdle {
		t.Errorf("want ErrIdle, got %v", err)
	}
}

func TestWooLeeDegenerateCases(t *testing.T) {
	m := WooLee{N: 1, K: 0.5}
	// One core: T = 1, E = 1, W = 1 regardless of f.
	for _, f := range []float64{0, 0.5, 1} {
		tt, err := m.Time(f)
		if err != nil || math.Abs(tt-1) > 1e-12 {
			t.Errorf("T(f=%g) = %g, %v", f, tt, err)
		}
		e, _ := m.Energy(f)
		if math.Abs(e-1) > 1e-12 {
			t.Errorf("E(f=%g) = %g", f, e)
		}
	}
	// f = 1 with perfect gating: E = 1 (n cores, each at 1, for 1/n).
	m = WooLee{N: 16, K: 0}
	e, _ := m.Energy(1)
	if math.Abs(e-1) > 1e-12 {
		t.Errorf("E(f=1,k=0) = %g, want 1", e)
	}
	// f = 0 with no gating: E = 1 + (n-1)k.
	m = WooLee{N: 4, K: 0.5}
	e, _ = m.Energy(0)
	if math.Abs(e-2.5) > 1e-12 {
		t.Errorf("E(f=0) = %g, want 2.5", e)
	}
}

func TestWooLeeAveragePower(t *testing.T) {
	m := WooLee{N: 8, K: 0.25}
	f := 0.9
	e, _ := m.Energy(f)
	tt, _ := m.Time(f)
	w, err := m.AveragePower(f)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-e/tt) > 1e-12 {
		t.Errorf("W = %g, want E/T = %g", w, e/tt)
	}
}

// Woo & Lee's headline: with imperfect gating, a symmetric many-core's
// perf/W never exceeds the single core's.
func TestWooLeePerfPerWattCeiling(t *testing.T) {
	for _, k := range []float64{0.1, 0.3, 1} {
		for _, n := range []int{2, 8, 64} {
			m := WooLee{N: n, K: k}
			for _, f := range []float64{0, 0.5, 0.9, 0.99, 1} {
				ppw, err := m.PerfPerWatt(f)
				if err != nil {
					t.Fatal(err)
				}
				if ppw > 1+1e-12 {
					t.Errorf("n=%d k=%g f=%g: perf/W = %g > 1", n, k, f, ppw)
				}
			}
		}
	}
	// With perfect gating and f=1 it exactly reaches 1.
	ppw, _ := (WooLee{N: 64, K: 0}).PerfPerWatt(1)
	if math.Abs(ppw-1) > 1e-12 {
		t.Errorf("perfect gating perf/W = %g", ppw)
	}
}

func TestWooLeePerfPerJoule(t *testing.T) {
	m := WooLee{N: 8, K: 0.2}
	ppj, err := m.PerfPerJoule(0.9)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := m.Energy(0.9)
	tt, _ := m.Time(0.9)
	if math.Abs(ppj-1/(e*tt)) > 1e-12 {
		t.Errorf("perf/J = %g", ppj)
	}
	// Parallelism helps perf/J (time shrinks) even when perf/W cannot
	// beat 1.
	low, _ := m.PerfPerJoule(0.1)
	high, _ := m.PerfPerJoule(0.95)
	if high <= low {
		t.Errorf("perf/J should grow with f: %g vs %g", low, high)
	}
}

// The U-core variant: an efficient U-core (phi/mu << 1) beats the BCE's
// perf/W at high parallelism — the paper's energy argument.
func TestWooLeeUCoreBeatsBCEEfficiency(t *testing.T) {
	m := WooLeeUCore{N: 19, R: 2, Mu: 27.4, Phi: 0.79, K: 0, Alpha: 1.75}
	ppw, err := m.PerfPerWatt(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if ppw <= 1 {
		t.Errorf("ASIC-like U-core perf/W = %g, should exceed the BCE's 1", ppw)
	}
	// With a power-hungry U-core (phi/mu > 1) it cannot.
	bad := m
	bad.Mu, bad.Phi = 1, 4
	ppw, err = bad.PerfPerWatt(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if ppw >= 1 {
		t.Errorf("inefficient U-core perf/W = %g, should be below 1", ppw)
	}
}

func TestWooLeeUCoreIdleFabricCost(t *testing.T) {
	gated := WooLeeUCore{N: 100, R: 2, Mu: 2, Phi: 0.3, K: 0, Alpha: 1.75}
	leaky := gated
	leaky.K = 1
	// At f = 0 the fabric never computes; leaky idle power still burns.
	eg, err1 := gated.Energy(0)
	el, err2 := leaky.Energy(0)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if el <= eg {
		t.Errorf("un-gated idle fabric should cost energy: %g vs %g", el, eg)
	}
	// Idle power scales with fabric size phi(n-r).
	wantExtra := 1.0 * 0.3 * 98 / math.Sqrt(2)
	if math.Abs((el-eg)-wantExtra) > 1e-9 {
		t.Errorf("idle energy delta = %g, want %g", el-eg, wantExtra)
	}
}

func TestWooLeeUCoreValidation(t *testing.T) {
	bad := []WooLeeUCore{
		{N: 2, R: 2, Mu: 1, Phi: 1, Alpha: 1.75}, // r >= n
		{N: 10, R: 0.5, Mu: 1, Phi: 1, Alpha: 1.75},
		{N: 10, R: 2, Mu: 0, Phi: 1, Alpha: 1.75},
		{N: 10, R: 2, Mu: 1, Phi: -1, Alpha: 1.75},
		{N: 10, R: 2, Mu: 1, Phi: 1, K: 2, Alpha: 1.75},
		{N: 10, R: 2, Mu: 1, Phi: 1, Alpha: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d should fail: %+v", i, m)
		}
	}
	good := WooLeeUCore{N: 10, R: 2, Mu: 1, Phi: 1, Alpha: 1.75}
	if _, err := good.Time(2); err != ErrFraction {
		t.Errorf("f=2: %v", err)
	}
	if _, err := good.Energy(-1); err != ErrFraction {
		t.Errorf("f=-1: %v", err)
	}
}

func TestWooLeeUCoreEnergyDelay(t *testing.T) {
	m := WooLeeUCore{N: 19, R: 2, Mu: 2.88, Phi: 0.63, K: 0, Alpha: 1.75}
	ed, err := m.EnergyDelay(0.9)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := m.Energy(0.9)
	tt, _ := m.Time(0.9)
	if math.Abs(ed-e*tt) > 1e-12 {
		t.Errorf("ED = %g, want %g", ed, e*tt)
	}
}

func TestCriticalSectionsLimits(t *testing.T) {
	// No critical sections: plain Amdahl.
	c := CriticalSections{FSeq: 0.1, FCrit: 0, PCtn: 0.5, N: 16}
	s, err := c.Speedup()
	if err != nil {
		t.Fatal(err)
	}
	amdahl := 1 / (0.1 + 0.9/16)
	if math.Abs(s-amdahl) > 1e-12 {
		t.Errorf("fCrit=0 speedup = %g, want Amdahl %g", s, amdahl)
	}
	// Fully-contended critical sections serialize: fCrit joins the
	// sequential fraction.
	c = CriticalSections{FSeq: 0.1, FCrit: 0.5, PCtn: 1, N: 16}
	s, _ = c.Speedup()
	serialized := 1 / (0.1 + 0.9*0.5/16 + 0.9*0.5)
	if math.Abs(s-serialized) > 1e-12 {
		t.Errorf("PCtn=1 speedup = %g, want %g", s, serialized)
	}
	// Never-contended critical sections are free.
	c.PCtn = 0
	s, _ = c.Speedup()
	if math.Abs(s-amdahl) > 1e-12 {
		t.Errorf("PCtn=0 speedup = %g, want Amdahl %g", s, amdahl)
	}
}

func TestCriticalSectionsEffectiveF(t *testing.T) {
	c := CriticalSections{FSeq: 0.05, FCrit: 0.2, PCtn: 0.5, N: 64}
	f, err := c.EffectiveF()
	if err != nil {
		t.Fatal(err)
	}
	// Contention destroys parallelism: effective f < nominal 0.95.
	if f >= 0.95 {
		t.Errorf("effective f = %g, want < 0.95", f)
	}
	// The effective f reproduces the speedup through plain Amdahl.
	s, _ := c.Speedup()
	back := 1 / ((1 - f) + f/64)
	if math.Abs(back-s) > 1e-9 {
		t.Errorf("effective f round-trip: %g vs %g", back, s)
	}
	if _, err := (CriticalSections{FSeq: 0.1, N: 1}).EffectiveF(); err == nil {
		t.Error("n=1 must fail")
	}
}

func TestCriticalSectionsValidation(t *testing.T) {
	if _, err := (CriticalSections{FSeq: -0.1, N: 4}).Speedup(); err != ErrFraction {
		t.Errorf("want ErrFraction, got %v", err)
	}
	if _, err := (CriticalSections{FSeq: 0.1, FCrit: 2, N: 4}).Speedup(); err != ErrFraction {
		t.Errorf("want ErrFraction, got %v", err)
	}
	if _, err := (CriticalSections{FSeq: 0.1, N: 0}).Speedup(); err != ErrCores {
		t.Errorf("want ErrCores, got %v", err)
	}
}

// Property: speedup decreases monotonically with contention probability.
func TestPropContentionHurts(t *testing.T) {
	prop := func(a, b, c float64) bool {
		fSeq := math.Mod(math.Abs(a), 0.5)
		fCrit := math.Mod(math.Abs(b), 1)
		p := math.Mod(math.Abs(c), 0.9)
		lo := CriticalSections{FSeq: fSeq, FCrit: fCrit, PCtn: p, N: 32}
		hi := CriticalSections{FSeq: fSeq, FCrit: fCrit, PCtn: p + 0.1, N: 32}
		sLo, err1 := lo.Speedup()
		sHi, err2 := hi.Speedup()
		return err1 == nil && err2 == nil && sHi <= sLo+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Woo-Lee energy is monotone in k (leakier idle, more energy).
func TestPropIdlePowerMonotone(t *testing.T) {
	prop := func(a, b float64) bool {
		f := math.Mod(math.Abs(a), 1)
		k := math.Mod(math.Abs(b), 0.9)
		m1 := WooLee{N: 16, K: k}
		m2 := WooLee{N: 16, K: k + 0.1}
		e1, err1 := m1.Energy(f)
		e2, err2 := m2.Energy(f)
		return err1 == nil && err2 == nil && e2 >= e1-1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
