package client

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/calcm/heterosim/internal/server"
)

// optimizeBody is a minimal /v1/optimize request.
func optimizeBody() server.OptimizeRequest {
	return server.OptimizeRequest{Workload: "generic", F: 0.9}
}

// okOptimizeJSON is a syntactically valid optimize response payload.
const okOptimizeJSON = `{"workload":"generic","budgets":{},"point":{}}`

func newTestClient(t *testing.T, url string, mutate func(*Config)) *Client {
	t.Helper()
	cfg := Config{
		BaseURL:     url,
		MaxAttempts: 4,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		Seed:        1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing BaseURL must fail")
	}
	if _, err := New(Config{BaseURL: "http://x", MaxAttempts: -1}); err == nil {
		t.Error("negative MaxAttempts must fail")
	}
}

// TestRetriesTransientThenSucceeds: 503s give way to a 200 within the
// attempt budget and the caller never sees the failures.
func TestRetriesTransientThenSucceeds(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"overloaded"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(okOptimizeJSON))
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, nil)
	resp, err := c.Optimize(context.Background(), optimizeBody())
	if err != nil {
		t.Fatalf("Optimize = %v, want success on third attempt", err)
	}
	if resp.Workload != "generic" {
		t.Errorf("resp.Workload = %q", resp.Workload)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3", got)
	}
}

// TestTerminal400NoRetry: validation failures surface immediately as
// *APIError with exactly one attempt made.
func TestTerminal400NoRetry(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"f must be in [0, 1]"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, nil)
	_, err := c.Optimize(context.Background(), optimizeBody())
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if ae.Status != http.StatusBadRequest || ae.Message != "f must be in [0, 1]" {
		t.Errorf("APIError = %+v", ae)
	}
	if ae.Retryable() {
		t.Error("a 400 must not be retryable")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls, want exactly 1", got)
	}
}

// TestRetryExhaustionWrapsLastError: persistent 500s exhaust the budget
// and come back as *RetryError wrapping the final *APIError.
func TestRetryExhaustionWrapsLastError(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, nil)
	_, err := c.Optimize(context.Background(), optimizeBody())
	var re *RetryError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RetryError", err)
	}
	if re.Attempts != 4 {
		t.Errorf("Attempts = %d, want the full budget of 4", re.Attempts)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusInternalServerError {
		t.Errorf("RetryError must unwrap to the last *APIError, got %v", err)
	}
	if got := calls.Load(); got != 4 {
		t.Errorf("server saw %d calls, want 4", got)
	}
}

// recordingSleeper captures every sleep the retry loop requests without
// actually waiting, so backoff tests are instant and can assert the
// exact schedule instead of lower-bounding wall time.
type recordingSleeper struct {
	mu     sync.Mutex
	sleeps []time.Duration
}

func (s *recordingSleeper) Sleep(ctx context.Context, d time.Duration) error {
	s.mu.Lock()
	s.sleeps = append(s.sleeps, d)
	s.mu.Unlock()
	return ctx.Err()
}

func (s *recordingSleeper) recorded() []time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]time.Duration(nil), s.sleeps...)
}

// TestExactBackoffSchedule replays the client's jitter stream with the
// same seed and asserts the retry loop requests exactly the schedule
// the config implies: full jitter in (0, min(MaxBackoff, Base<<n)],
// drawn from the seeded RNG, with no sleep before the first attempt.
// The fake sleeper makes the whole test instant.
func TestExactBackoffSchedule(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()

	const (
		seed        = 42
		maxAttempts = 5
		base        = 100 * time.Millisecond
		cap         = 300 * time.Millisecond
	)
	sl := &recordingSleeper{}
	c := newTestClient(t, ts.URL, func(cfg *Config) {
		cfg.Seed = seed
		cfg.MaxAttempts = maxAttempts
		cfg.BaseBackoff = base
		cfg.MaxBackoff = cap
		cfg.Sleeper = sl
	})
	if _, err := c.Optimize(context.Background(), optimizeBody()); err == nil {
		t.Fatal("want retry exhaustion against a permanent 500")
	}
	if got := calls.Load(); got != maxAttempts {
		t.Fatalf("server saw %d calls, want %d", got, maxAttempts)
	}

	// Replay the schedule: attempt n's pre-sleep draws from the same
	// seeded stream the client uses, over the capped exponential.
	rng := rand.New(rand.NewSource(seed))
	var want []time.Duration
	for n := 1; n < maxAttempts; n++ {
		d := base << uint(n-1)
		if d > cap || d <= 0 {
			d = cap
		}
		want = append(want, time.Duration(rng.Int63n(int64(d)))+1)
	}
	got := sl.recorded()
	if len(got) != len(want) {
		t.Fatalf("recorded %d sleeps (%v), want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sleep %d = %v, want %v (full schedule %v)", i, got[i], want[i], want)
		}
		bound := base << uint(i)
		if bound > cap || bound <= 0 {
			bound = cap
		}
		if got[i] <= 0 || got[i] > bound {
			t.Errorf("sleep %d = %v outside (0, %v]", i, got[i], bound)
		}
	}
}

// TestRetryAfterIsFloor: a Retry-After hint larger than the jittered
// backoff replaces it — the retry loop requests exactly the server's
// floor. The fake sleeper keeps the 7-second hint instant.
func TestRetryAfterIsFloor(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "7")
			http.Error(w, `{"error":"busy"}`, http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(okOptimizeJSON))
	}))
	defer ts.Close()

	sl := &recordingSleeper{}
	c := newTestClient(t, ts.URL, func(cfg *Config) {
		cfg.MaxAttempts = 2
		cfg.Sleeper = sl
	})
	if _, err := c.Optimize(context.Background(), optimizeBody()); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
	got := sl.recorded()
	if len(got) != 1 || got[0] != 7*time.Second {
		t.Errorf("sleeps = %v, want exactly the 7s Retry-After floor", got)
	}
}

// TestOnAttemptObserver: the per-attempt observer sees every wire
// attempt with its status and cache header, in order, under the
// caller's context.
func TestOnAttemptObserver(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, `{"error":"overloaded"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("X-Heterosim-Cache", "hit")
		w.Write([]byte(okOptimizeJSON))
	}))
	defer ts.Close()

	type ctxKey struct{}
	var mu sync.Mutex
	var seen []Attempt
	var ctxOK = true
	c := newTestClient(t, ts.URL, func(cfg *Config) {
		cfg.Sleeper = &recordingSleeper{}
		cfg.OnAttempt = func(ctx context.Context, a Attempt) {
			mu.Lock()
			defer mu.Unlock()
			if ctx.Value(ctxKey{}) != "tagged" {
				ctxOK = false
			}
			seen = append(seen, a)
		}
	})
	ctx := context.WithValue(context.Background(), ctxKey{}, "tagged")
	if _, err := c.Optimize(ctx, optimizeBody()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if !ctxOK {
		t.Error("observer did not receive the caller's context")
	}
	if len(seen) != 2 {
		t.Fatalf("observer saw %d attempts, want 2: %+v", len(seen), seen)
	}
	if seen[0].N != 1 || seen[0].Status != http.StatusServiceUnavailable || seen[0].Err == nil {
		t.Errorf("attempt 1 = %+v, want a failed 503", seen[0])
	}
	if seen[1].N != 2 || seen[1].Status != http.StatusOK || seen[1].Cache != "hit" || seen[1].Err != nil {
		t.Errorf("attempt 2 = %+v, want a clean 200 with cache=hit", seen[1])
	}
	if seen[0].Endpoint != "/v1/optimize" {
		t.Errorf("Endpoint = %q", seen[0].Endpoint)
	}
}

// TestTruncatedBodyRetried: a 200 whose body dies mid-transfer is a
// TransportError and gets retried to success.
func TestTruncatedBodyRetried(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Declare more bytes than sent, then abort: unexpected EOF.
			w.Header().Set("Content-Length", strconv.Itoa(len(okOptimizeJSON)))
			w.Write([]byte(okOptimizeJSON[:10]))
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			panic(http.ErrAbortHandler)
		}
		w.Write([]byte(okOptimizeJSON))
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, nil)
	if _, err := c.Optimize(context.Background(), optimizeBody()); err != nil {
		t.Fatalf("Optimize = %v, want truncated first attempt retried", err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("server saw %d calls, want 2", got)
	}
}

// TestGarbage200Retried: a 200 with an undecodable body is treated as a
// corrupted transfer, not a terminal failure.
func TestGarbage200Retried(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Write([]byte(`{"f": 0.9, "winn`)) // valid transfer, broken JSON
			return
		}
		w.Write([]byte(okOptimizeJSON))
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, nil)
	if _, err := c.Optimize(context.Background(), optimizeBody()); err != nil {
		t.Fatalf("Optimize = %v, want decode failure retried", err)
	}
}

// TestDeadlineStopsRetries: with the server permanently down, a short
// caller deadline returns a RetryError promptly instead of sleeping
// through backoffs the deadline cannot survive.
func TestDeadlineStopsRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, func(cfg *Config) {
		cfg.MaxAttempts = 100
		cfg.BaseBackoff = 50 * time.Millisecond
		cfg.MaxBackoff = time.Second
	})
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Optimize(ctx, optimizeBody())
	took := time.Since(start)
	var re *RetryError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RetryError", err)
	}
	if re.Attempts < 1 || re.Attempts >= 100 {
		t.Errorf("Attempts = %d, want a handful bounded by the deadline", re.Attempts)
	}
	if took > time.Second {
		t.Errorf("gave up after %v, want well under a second", took)
	}
}

// TestConnectionRefusedIsTransport: a dead endpoint yields a RetryError
// unwrapping to *TransportError.
func TestConnectionRefusedIsTransport(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close() // nothing listens here any more

	c := newTestClient(t, url, func(cfg *Config) { cfg.MaxAttempts = 2 })
	_, err := c.Optimize(context.Background(), optimizeBody())
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TransportError inside the RetryError", err)
	}
}

// TestGetEndpoints exercises Version, Metrics, and Healthz against a
// stub server.
func TestGetEndpoints(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/version", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]string{"module": "m", "version": "v1.2.3"})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"uptimeSeconds": 1}`))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"ok"}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := newTestClient(t, ts.URL, nil)
	ctx := context.Background()
	if v, err := c.Version(ctx); err != nil || v.Version != "v1.2.3" {
		t.Errorf("Version = (%+v, %v)", v, err)
	}
	if _, err := c.Metrics(ctx); err != nil {
		t.Errorf("Metrics = %v", err)
	}
	if err := c.Healthz(ctx); err != nil {
		t.Errorf("Healthz = %v", err)
	}
}
