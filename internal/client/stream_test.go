package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/calcm/heterosim/internal/server"
)

// realServer boots an in-process heterosimd behind httptest.
func realServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// sweepReq is a small but non-trivial two-axis sweep.
func sweepReq() server.SweepRequest {
	return server.SweepRequest{
		Workload: "MMM",
		Design:   server.DesignSpec{Kind: "sym"},
		F:        server.AxisSpec{Lo: 0.5, Hi: 0.99, Steps: 7},
		AreaScale: &server.AxisSpec{
			Values: []float64{0.5, 1, 2},
		},
	}
}

func TestBaseURLsValidation(t *testing.T) {
	if _, err := New(Config{BaseURL: "http://a", BaseURLs: []string{"http://b"}}); err == nil {
		t.Error("BaseURL together with BaseURLs must fail")
	}
	if _, err := New(Config{BaseURLs: []string{"http://a:1", "a:1"}}); err == nil {
		t.Error("duplicate endpoints (after normalization) must fail")
	}
	c, err := New(Config{BaseURLs: []string{"host-a:1", "host-b:2"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Endpoint(); got != "http://host-a:1" {
		t.Errorf("Endpoint() = %q, want the first normalized base URL", got)
	}
}

// TestFailoverRotatesEndpoints: a dead first endpoint rotates the
// whole client onto the healthy second; later calls go straight there.
func TestFailoverRotatesEndpoints(t *testing.T) {
	var deadCalls, liveCalls atomic.Int32
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		deadCalls.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
	}))
	defer dead.Close()
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		liveCalls.Add(1)
		w.Write([]byte(okOptimizeJSON))
	}))
	defer live.Close()

	c := newTestClient(t, "", func(cfg *Config) {
		cfg.BaseURL = ""
		cfg.BaseURLs = []string{dead.URL, live.URL}
	})
	if _, err := c.Optimize(context.Background(), optimizeBody()); err != nil {
		t.Fatalf("first call should fail over and succeed, got %v", err)
	}
	if deadCalls.Load() != 1 || liveCalls.Load() != 1 {
		t.Errorf("calls = (dead %d, live %d), want one each", deadCalls.Load(), liveCalls.Load())
	}
	// The rotation is sticky: the next call starts at the live peer.
	if _, err := c.Optimize(context.Background(), optimizeBody()); err != nil {
		t.Fatal(err)
	}
	if deadCalls.Load() != 1 {
		t.Errorf("second call hit the dead peer again (dead calls = %d)", deadCalls.Load())
	}
	if got := c.Endpoint(); got != live.URL {
		t.Errorf("Endpoint() = %q, want %q", got, live.URL)
	}
}

// TestBatchRoundTrip drives a mixed batch — two valid ops (one a
// duplicate), an unknown op, and an invalid body — through a real
// server and checks the per-item contract.
func TestBatchRoundTrip(t *testing.T) {
	ts := realServer(t)
	c := newTestClient(t, ts.URL, nil)
	ctx := context.Background()

	opt := json.RawMessage(`{"workload":"MMM","f":0.9,"design":{"kind":"sym"}}`)
	resp, err := c.Batch(ctx, server.BatchRequest{Items: []server.BatchItemRequest{
		{Op: "optimize", Request: opt},
		{Op: "optimize", Request: opt},
		{Op: "nosuch", Request: json.RawMessage(`{}`)},
		{Op: "optimize", Request: json.RawMessage(`{"workload":"bogus"}`)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK != 2 || resp.Failed != 2 {
		t.Fatalf("ok/failed = %d/%d, want 2/2", resp.OK, resp.Failed)
	}
	if len(resp.Items) != 4 {
		t.Fatalf("items = %d, want 4 (request order preserved)", len(resp.Items))
	}
	standalone, err := c.Optimize(ctx, server.OptimizeRequest{Workload: "MMM", F: 0.9, Design: server.DesignSpec{Kind: "sym"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		it := resp.Items[i]
		if it.Status != http.StatusOK || it.Op != "optimize" {
			t.Fatalf("item %d = %+v, want optimize/200", i, it)
		}
		var got server.OptimizeResponse
		if err := json.Unmarshal(it.Response, &got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(&got, standalone) {
			t.Errorf("item %d response differs from standalone /v1/optimize:\n got %+v\nwant %+v", i, got, *standalone)
		}
	}
	// The duplicate item coalesced or hit — exactly one compute for the
	// pair.
	if a, b := resp.Items[0].Cache, resp.Items[1].Cache; a == "miss" && b == "miss" {
		t.Errorf("both identical items computed (cache = %q, %q)", a, b)
	}
	if it := resp.Items[2]; it.Status != http.StatusBadRequest || !strings.Contains(it.Error, "unknown op") {
		t.Errorf("unknown op item = %+v, want 400 unknown op", it)
	}
	if it := resp.Items[3]; it.Status != http.StatusBadRequest || it.Error == "" {
		t.Errorf("invalid body item = %+v, want itemized 400", it)
	}
}

// TestBatchStructuralErrors: a malformed envelope is a batch-level
// error, not an itemized response.
func TestBatchStructuralErrors(t *testing.T) {
	ts := realServer(t)
	c := newTestClient(t, ts.URL, nil)
	_, err := c.Batch(context.Background(), server.BatchRequest{})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Errorf("empty batch: got %v, want a 400 APIError", err)
	}
}

// TestSweepStreamMatchesBuffered: the streamed rows are exactly the
// buffered response's points — same order, same values — and the
// trailer carries the same reduction.
func TestSweepStreamMatchesBuffered(t *testing.T) {
	ts := realServer(t)
	c := newTestClient(t, ts.URL, nil)
	ctx := context.Background()
	req := sweepReq()

	buffered, err := c.Sweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	var rows []server.SweepPointJSON
	res, err := c.SweepStream(ctx, req, func(p server.SweepPointJSON) error {
		rows = append(rows, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, buffered.Points) {
		t.Errorf("streamed rows differ from buffered points:\n got %+v\nwant %+v", rows, buffered.Points)
	}
	if res.Rows != len(buffered.Points) {
		t.Errorf("Rows = %d, want %d", res.Rows, len(buffered.Points))
	}
	if res.Trailer.Feasible != buffered.Feasible {
		t.Errorf("trailer feasible = %d, want %d", res.Trailer.Feasible, buffered.Feasible)
	}
	if !reflect.DeepEqual(res.Trailer.Best, buffered.Best) {
		t.Errorf("trailer best = %+v, want %+v", res.Trailer.Best, buffered.Best)
	}
	if res.Header.Workload != buffered.Workload || res.Header.Design != buffered.Design {
		t.Errorf("header identity = %+v, want workload %q design %q", res.Header, buffered.Workload, buffered.Design)
	}
}

// TestSweepStreamValidation: a bad request fails the stream before any
// row, as a terminal APIError.
func TestSweepStreamValidation(t *testing.T) {
	ts := realServer(t)
	c := newTestClient(t, ts.URL, nil)
	req := sweepReq()
	req.Workload = "nope"
	rows := 0
	_, err := c.SweepStream(context.Background(), req, func(server.SweepPointJSON) error {
		rows++
		return nil
	})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Errorf("got %v, want 400 APIError", err)
	}
	if rows != 0 {
		t.Errorf("callback saw %d rows on a failed stream", rows)
	}
}

// TestSweepStreamNoRetryAfterRows: once a row reached the callback, a
// broken stream is terminal — the client never replays rows.
func TestSweepStreamNoRetryAfterRows(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Write([]byte(`{"workload":"MMM","node":"40nm","design":"sym","axes":[]}` + "\n"))
		w.Write([]byte(`{"f":0.9,"areaScale":1,"powerScale":1,"bandwidthScale":1,"valid":true}` + "\n"))
		w.(http.Flusher).Flush()
		// Drop the connection mid-stream: no trailer, no clean EOF.
		if hj, ok := w.(http.Hijacker); ok {
			conn, _, _ := hj.Hijack()
			conn.Close()
		}
	}))
	defer ts.Close()
	c := newTestClient(t, ts.URL, nil)
	rows := 0
	_, err := c.SweepStream(context.Background(), sweepReq(), func(server.SweepPointJSON) error {
		rows++
		return nil
	})
	if err == nil {
		t.Fatal("truncated stream must fail")
	}
	if rows != 1 {
		t.Errorf("callback saw %d rows, want 1", rows)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d attempts, want 1 (no replay after delivered rows)", got)
	}
}

// TestSweepStreamRetriesEstablishment: 503s before any stream bytes
// retry and fail over like buffered calls.
func TestSweepStreamRetriesEstablishment(t *testing.T) {
	var deadCalls atomic.Int32
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		deadCalls.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
	}))
	defer dead.Close()
	live := realServer(t)

	c := newTestClient(t, "", func(cfg *Config) {
		cfg.BaseURL = ""
		cfg.BaseURLs = []string{dead.URL, live.URL}
	})
	rows := 0
	res, err := c.SweepStream(context.Background(), sweepReq(), func(server.SweepPointJSON) error {
		rows++
		return nil
	})
	if err != nil {
		t.Fatalf("stream should fail over and succeed, got %v", err)
	}
	if deadCalls.Load() != 1 {
		t.Errorf("dead peer saw %d calls, want 1", deadCalls.Load())
	}
	if rows == 0 || res.Rows != rows {
		t.Errorf("rows = %d (result %d), want the full grid", rows, res.Rows)
	}
}

// TestSweepStreamCallbackErrorStops: the row callback's error surfaces
// and ends the call.
func TestSweepStreamCallbackErrorStops(t *testing.T) {
	ts := realServer(t)
	c := newTestClient(t, ts.URL, nil)
	boom := errors.New("enough")
	rows := 0
	_, err := c.SweepStream(context.Background(), sweepReq(), func(server.SweepPointJSON) error {
		rows++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Errorf("got %v, want the callback error", err)
	}
	if rows != 1 {
		t.Errorf("callback ran %d times after erroring, want 1", rows)
	}
}
