package client

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"testing"
	"time"

	"github.com/calcm/heterosim/internal/faultinject"
	"github.com/calcm/heterosim/internal/server"
)

// TestMeasureFaultLatency is the EXPERIMENTS.md measurement, not a
// regression test: it drives warm-cache optimize requests through the
// full client -> (injector) -> server loop and reports p50/p99 request
// latency as seen by a caller of the retrying client, with and without
// injected faults. Gated behind HETEROSIM_MEASURE=1 so CI never pays
// for it; run with
//
//	HETEROSIM_MEASURE=1 go test -run MeasureFaultLatency -v ./internal/client/
func TestMeasureFaultLatency(t *testing.T) {
	if os.Getenv("HETEROSIM_MEASURE") != "1" {
		t.Skip("set HETEROSIM_MEASURE=1 to run the latency measurement")
	}
	const n = 2000
	configs := []struct {
		name string
		cfg  *faultinject.Config
	}{
		{"no faults", nil},
		{"10% transport faults (5% reset + 5% truncate)",
			&faultinject.Config{Seed: 3, ResetP: 0.05, TruncateP: 0.05}},
		{"10% injected 5xx (Retry-After honored on 503)",
			&faultinject.Config{Seed: 3, ErrorP: 0.10}},
	}
	for _, tc := range configs {
		srv, err := server.New(server.Config{})
		if err != nil {
			t.Fatal(err)
		}
		handler := http.Handler(srv.Handler())
		var inj *faultinject.Injector
		if tc.cfg != nil {
			if inj, err = faultinject.New(*tc.cfg); err != nil {
				t.Fatal(err)
			}
			handler = inj.Wrap(handler)
		}
		ts := httptest.NewServer(handler)
		c, err := New(Config{
			BaseURL:     ts.URL,
			MaxAttempts: 8,
			BaseBackoff: 5 * time.Millisecond,
			MaxBackoff:  100 * time.Millisecond,
			Seed:        1,
		})
		if err != nil {
			t.Fatal(err)
		}
		req := server.OptimizeRequest{Workload: "FFT-1024", F: 0.99}
		req.Design.Kind = "het"
		req.Design.Device = "asic"
		if _, err := c.Optimize(context.Background(), req); err != nil {
			t.Fatalf("%s: warmup: %v", tc.name, err)
		}
		lat := make([]time.Duration, 0, n)
		fails := 0
		for i := 0; i < n; i++ {
			start := time.Now()
			if _, err := c.Optimize(context.Background(), req); err != nil {
				fails++
				continue
			}
			lat = append(lat, time.Since(start))
		}
		ts.Close()
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		pct := func(p float64) time.Duration { return lat[int(p*float64(len(lat)-1))] }
		line := fmt.Sprintf("%-48s n=%d ok=%d failed=%d p50=%v p99=%v",
			tc.name, n, len(lat), fails, pct(0.50).Round(time.Microsecond), pct(0.99).Round(time.Microsecond))
		if inj != nil {
			line += fmt.Sprintf(" injector=%+v", inj.Stats())
		}
		t.Log(line)
	}
}
