// Package client is the Go client for the heterosimd serving API: typed
// calls for every /v1/* endpoint with the retry discipline the model
// layer's purity makes safe. Each endpoint method is a thin typed
// wrapper over one generic call path (post/get), mirroring the server's
// single generic pipeline over the operation registry.
//
// Every model endpoint is a pure function of the request body, so every
// request is idempotent and a retry can never double-apply work. The
// client therefore retries transport failures (connection resets,
// truncated bodies, unexpected EOFs) and overload statuses (429, 5xx)
// with capped exponential backoff and full jitter, honors Retry-After
// when the server supplies one, and gives up early when the caller's
// context deadline would expire before the next attempt could run.
// Validation failures (other 4xx) are terminal and returned as *APIError
// on the first attempt.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/calcm/heterosim/internal/baseurl"
	"github.com/calcm/heterosim/internal/server"
	"github.com/calcm/heterosim/internal/telemetry"
	"github.com/calcm/heterosim/internal/version"
)

// Config parameterizes a Client. The zero value is not usable — BaseURL
// (or BaseURLs) is required; every other field has a sensible default
// applied by New.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080". A bare
	// "host:port" is accepted and normalized (internal/baseurl).
	BaseURL string

	// BaseURLs, when set, lists every endpoint of a cluster; BaseURL
	// must then be empty. The client is pick-first: all calls go to one
	// current endpoint, and a retryable failure rotates the whole
	// client to the next — the existing backoff/Retry-After machinery
	// paces the retry, it just lands on a different peer. Any peer can
	// answer any request (the cache tier forwards to the key's owner),
	// so failover never changes a response body.
	BaseURLs []string

	// HTTPClient issues the requests (default http.DefaultClient). Give
	// it no Timeout; the per-call context bounds each attempt.
	HTTPClient *http.Client

	// MaxAttempts bounds tries per call, first attempt included
	// (default 5).
	MaxAttempts int

	// BaseBackoff seeds the exponential schedule (default 50ms); attempt
	// n sleeps a full-jittered duration in (0, min(MaxBackoff,
	// BaseBackoff<<n)].
	BaseBackoff time.Duration

	// MaxBackoff caps one sleep (default 2s).
	MaxBackoff time.Duration

	// Seed drives the jitter stream; a fixed seed makes the backoff
	// schedule reproducible in tests (default 1).
	Seed int64

	// Logger, when non-nil, receives one structured line per retried
	// attempt and per give-up, each carrying the call's request ID — the
	// client half of the end-to-end tracing loop.
	Logger *slog.Logger

	// Sleeper paces the retry loop (default: real timers). Injecting a
	// fake makes backoff behavior instantly testable: the exact schedule
	// the client would sleep is observable without waiting through it.
	Sleeper Sleeper

	// OnAttempt, when non-nil, observes every completed wire attempt
	// with the caller's context, so a driver issuing concurrent calls
	// can correlate attempts back to its own per-request state. The
	// callback must be safe for concurrent use and must not block.
	OnAttempt func(ctx context.Context, a Attempt)
}

// Sleeper is the retry loop's clock: Sleep waits d or until ctx is
// done, returning ctx.Err() when the context ended the wait early.
type Sleeper interface {
	Sleep(ctx context.Context, d time.Duration) error
}

// realSleeper is the production Sleeper.
type realSleeper struct{}

func (realSleeper) Sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Attempt describes one completed wire attempt for Config.OnAttempt:
// enough to account for every response class a load driver cares about
// without re-parsing bodies.
type Attempt struct {
	// Endpoint is the request path, e.g. "/v1/optimize".
	Endpoint string
	// N is the 1-based attempt number within the call.
	N int
	// Status is the HTTP status (0 when no response arrived).
	Status int
	// Cache is the X-Heterosim-Cache outcome header, when present.
	Cache string
	// Fault is the X-Fault-Injected marker, when the chaos middleware
	// answered.
	Fault string
	// Err is the attempt's error (nil on success); terminal vs
	// retryable classification is the caller's via errors.As.
	Err error
}

// withDefaults normalizes the config and resolves the endpoint list.
func (c Config) withDefaults() (Config, []string, error) {
	if c.BaseURL != "" && len(c.BaseURLs) > 0 {
		return c, nil, errors.New("client: set BaseURL or BaseURLs, not both")
	}
	raw := c.BaseURLs
	if len(raw) == 0 {
		if c.BaseURL == "" {
			return c, nil, errors.New("client: BaseURL required")
		}
		raw = []string{c.BaseURL}
	}
	endpoints := make([]string, 0, len(raw))
	seen := make(map[string]bool)
	for _, u := range raw {
		n, err := baseurl.Normalize(u)
		if err != nil {
			return c, nil, fmt.Errorf("client: %w", err)
		}
		if seen[n] {
			return c, nil, fmt.Errorf("client: duplicate endpoint %q", n)
		}
		seen[n] = true
		endpoints = append(endpoints, n)
	}
	c.BaseURL = endpoints[0]
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 5
	}
	if c.MaxAttempts < 1 {
		return c, nil, errors.New("client: MaxAttempts must be >= 1")
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Sleeper == nil {
		c.Sleeper = realSleeper{}
	}
	return c, endpoints, nil
}

// Client calls the serving API. Construct with New; safe for concurrent
// use.
type Client struct {
	cfg Config

	// endpoints is the normalized endpoint list; cur indexes the
	// current pick-first choice. A retryable failure rotates cur so
	// subsequent attempts (and calls) land on the next peer.
	endpoints []string
	cur       atomic.Int64

	mu  sync.Mutex
	rng *rand.Rand
}

// New builds a client from the config.
func New(cfg Config) (*Client, error) {
	cfg, endpoints, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Client{
		cfg:       cfg,
		endpoints: endpoints,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// Endpoint returns the base URL the next call will try first.
func (c *Client) Endpoint() string {
	return c.endpoints[int(c.cur.Load())%len(c.endpoints)]
}

// failover rotates away from the endpoint at index from, if it is still
// current. The compare-and-swap makes concurrent calls that fail
// against the same peer advance the cursor once, not once each.
func (c *Client) failover(from int64) {
	if len(c.endpoints) > 1 {
		c.cur.CompareAndSwap(from, (from+1)%int64(len(c.endpoints)))
	}
}

// APIError is a server-produced error response. Terminal statuses
// (validation 4xx) surface immediately; retryable ones (429, 5xx) only
// after retries are exhausted, wrapped in *RetryError.
type APIError struct {
	Status   int
	Message  string
	Endpoint string

	// retryAfter is the server's Retry-After hint, when present; the
	// retry loop uses it as a floor under the jittered backoff.
	retryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: %s: server returned %d: %s", e.Endpoint, e.Status, e.Message)
}

// Retryable reports whether the status signals a transient condition an
// idempotent request may retry: overload (429), upstream-style 5xx, and
// timeouts. Validation failures are permanent — the same body will fail
// the same way.
func (e *APIError) Retryable() bool {
	return e.Status == http.StatusTooManyRequests || e.Status >= 500
}

// TransportError is a failed attempt that produced no usable response:
// connection refused/reset, truncated or undecodable body. Always
// retryable — the request is idempotent, and a response that never
// arrived committed nothing.
type TransportError struct {
	Endpoint string
	Err      error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("client: %s: %v", e.Endpoint, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// RetryError reports that every allowed attempt failed (or the deadline
// ran out between attempts). Last is the final attempt's error; Unwrap
// exposes it so errors.Is/As reach through.
type RetryError struct {
	Endpoint string
	Attempts int
	Last     error
}

func (e *RetryError) Error() string {
	return fmt.Sprintf("client: %s: gave up after %d attempt(s): %v", e.Endpoint, e.Attempts, e.Last)
}

func (e *RetryError) Unwrap() error { return e.Last }

// retryable classifies one attempt's error.
func retryable(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Retryable()
	}
	var te *TransportError
	return errors.As(err, &te)
}

// backoff computes the sleep before attempt n+1 (n counts completed
// attempts, so the first retry gets n = 1): full jitter over the capped
// exponential, floored by the server's Retry-After when one was given.
func (c *Client) backoff(n int, retryAfter time.Duration) time.Duration {
	d := c.cfg.BaseBackoff << uint(n-1)
	if d > c.cfg.MaxBackoff || d <= 0 {
		d = c.cfg.MaxBackoff
	}
	c.mu.Lock()
	jittered := time.Duration(c.rng.Int63n(int64(d))) + 1
	c.mu.Unlock()
	if retryAfter > jittered {
		return retryAfter
	}
	return jittered
}

// pace waits d (through the configured Sleeper) or until ctx expires,
// whichever is first. It refuses to start a sleep the deadline cannot
// survive, so a tight deadline fails fast instead of burning its budget
// waiting for an attempt that could never be made.
func (c *Client) pace(ctx context.Context, d time.Duration) error {
	if deadline, ok := ctx.Deadline(); ok && time.Until(deadline) < d {
		return context.DeadlineExceeded
	}
	return c.cfg.Sleeper.Sleep(ctx, d)
}

// call runs the retry loop for one endpoint: marshal once, attempt up to
// MaxAttempts times, decode into out on success. Every attempt of one
// call carries the same X-Request-ID — taken from the caller's context
// when present (telemetry.WithRequestID), minted otherwise — so server
// access logs and injected-fault lines can be joined back to this call.
func (c *Client) call(ctx context.Context, method, path string, in, out any) error {
	if ctx == nil {
		ctx = context.Background()
	}
	id := telemetry.SanitizeRequestID(telemetry.RequestID(ctx))
	if id == "" {
		id = telemetry.NewRequestID()
	}
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: %s: encoding request: %w", path, err)
		}
	}
	var last error
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			var retryAfter time.Duration
			var ae *APIError
			if errors.As(last, &ae) {
				retryAfter = ae.retryAfter
			}
			if err := c.pace(ctx, c.backoff(attempt-1, retryAfter)); err != nil {
				return c.giveUp(ctx, &RetryError{Endpoint: path, Attempts: attempt - 1, Last: last}, id)
			}
		}
		idx := c.cur.Load()
		base := c.endpoints[int(idx)%len(c.endpoints)]
		err := c.attempt(ctx, method, base, path, body, out, id, attempt)
		if err == nil {
			return nil
		}
		if !retryable(err) {
			return err
		}
		// Pick-first failover: the current peer failed retryably, so
		// rotate every future attempt — of this call and all others —
		// to the next peer before backing off.
		c.failover(idx)
		last = err
		if c.cfg.Logger != nil {
			c.cfg.Logger.LogAttrs(ctx, slog.LevelWarn, "attempt failed",
				slog.String("id", id), slog.String("endpoint", path),
				slog.Int("attempt", attempt), slog.String("error", err.Error()))
		}
		if ctx.Err() != nil {
			// The caller's context, not the server, ended this attempt:
			// no further try can succeed.
			return c.giveUp(ctx, &RetryError{Endpoint: path, Attempts: attempt, Last: last}, id)
		}
	}
	return c.giveUp(ctx, &RetryError{Endpoint: path, Attempts: c.cfg.MaxAttempts, Last: last}, id)
}

// giveUp logs a terminal retry failure and returns it.
func (c *Client) giveUp(ctx context.Context, re *RetryError, id string) error {
	if c.cfg.Logger != nil {
		c.cfg.Logger.LogAttrs(ctx, slog.LevelError, "gave up",
			slog.String("id", id), slog.String("endpoint", re.Endpoint),
			slog.Int("attempts", re.Attempts), slog.String("error", re.Error()))
	}
	return re
}

// attempt is one wire exchange against base; n is the 1-based attempt
// number, passed through to the OnAttempt observer.
func (c *Client) attempt(ctx context.Context, method, base, path string, body []byte, out any, id string, n int) (err error) {
	a := Attempt{Endpoint: path, N: n}
	if c.cfg.OnAttempt != nil {
		defer func() {
			a.Err = err
			c.cfg.OnAttempt(ctx, a)
		}()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
	if err != nil {
		return fmt.Errorf("client: %s: %w", path, err)
	}
	req.Header.Set(telemetry.HeaderRequestID, id)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	res, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return &TransportError{Endpoint: path, Err: err}
	}
	defer res.Body.Close()
	a.Status = res.StatusCode
	a.Cache = res.Header.Get("X-Heterosim-Cache")
	a.Fault = res.Header.Get("X-Fault-Injected")
	payload, err := io.ReadAll(io.LimitReader(res.Body, 64<<20))
	if err != nil {
		// Truncated or reset mid-body: idempotent, so retryable.
		return &TransportError{Endpoint: path, Err: err}
	}
	if res.StatusCode != http.StatusOK {
		return apiErrorFrom(res, payload, path)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(payload, out); err != nil {
		// A 200 with an undecodable body is a truncated/corrupted
		// transfer, not a model error: retry it.
		return &TransportError{Endpoint: path, Err: fmt.Errorf("decoding response: %w", err)}
	}
	return nil
}

// apiErrorFrom builds the *APIError for a non-200 response: the JSON
// error message when the body carries one, the raw body otherwise,
// plus the server's Retry-After hint. Shared by the buffered and
// streaming attempt paths so error decoding can never drift.
func apiErrorFrom(res *http.Response, payload []byte, path string) *APIError {
	ae := &APIError{Status: res.StatusCode, Endpoint: path}
	var msg struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(payload, &msg) == nil && msg.Error != "" {
		ae.Message = msg.Error
	} else {
		ae.Message = strings.TrimSpace(string(payload))
	}
	if ra := res.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			ae.retryAfter = time.Duration(secs) * time.Second
		}
	}
	return ae
}

// post runs one typed POST call through the shared retry path: every
// endpoint method below is this one generic call instantiated at its
// request/response pair, so retry, backoff, and error classification
// can never drift between endpoints.
func post[Req, Resp any](ctx context.Context, c *Client, path string, req Req) (*Resp, error) {
	var resp Resp
	if err := c.call(ctx, http.MethodPost, path, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// get is post's body-less GET counterpart.
func get[Resp any](ctx context.Context, c *Client, path string) (*Resp, error) {
	var resp Resp
	if err := c.call(ctx, http.MethodGet, path, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Optimize evaluates one design point (POST /v1/optimize).
func (c *Client) Optimize(ctx context.Context, req server.OptimizeRequest) (*server.OptimizeResponse, error) {
	return post[server.OptimizeRequest, server.OptimizeResponse](ctx, c, "/v1/optimize", req)
}

// Sweep evaluates an (f x budget-scale) grid (POST /v1/sweep).
func (c *Client) Sweep(ctx context.Context, req server.SweepRequest) (*server.SweepResponse, error) {
	return post[server.SweepRequest, server.SweepResponse](ctx, c, "/v1/sweep", req)
}

// Project computes ITRS trajectory projections (POST /v1/project).
func (c *Client) Project(ctx context.Context, req server.ProjectRequest) (*server.ProjectResponse, error) {
	return post[server.ProjectRequest, server.ProjectResponse](ctx, c, "/v1/project", req)
}

// Scenario runs a Section 6.2 study (POST /v1/scenario).
func (c *Client) Scenario(ctx context.Context, req server.ScenarioRequest) (*server.ScenarioResponse, error) {
	return post[server.ScenarioRequest, server.ScenarioResponse](ctx, c, "/v1/scenario", req)
}

// Sensitivity profiles elasticities and a Monte Carlo speedup interval
// for one design point (POST /v1/sensitivity).
func (c *Client) Sensitivity(ctx context.Context, req server.SensitivityRequest) (*server.SensitivityResponse, error) {
	return post[server.SensitivityRequest, server.SensitivityResponse](ctx, c, "/v1/sensitivity", req)
}

// Ablation runs the three configuration ablations at one node
// (POST /v1/ablation).
func (c *Client) Ablation(ctx context.Context, req server.AblationRequest) (*server.AblationResponse, error) {
	return post[server.AblationRequest, server.AblationResponse](ctx, c, "/v1/ablation", req)
}

// Version fetches the server build identity (GET /v1/version).
func (c *Client) Version(ctx context.Context) (*version.Info, error) {
	return get[version.Info](ctx, c, "/v1/version")
}

// Models fetches the server's model-backend registry (GET /v1/models):
// every backend's capabilities and parameters plus the default name,
// so callers can discover what the `model` request field accepts.
func (c *Client) Models(ctx context.Context) (*server.ModelsResponse, error) {
	return get[server.ModelsResponse](ctx, c, "/v1/models")
}

// Metrics fetches the server counters (GET /metrics).
func (c *Client) Metrics(ctx context.Context) (*server.Metrics, error) {
	return get[server.Metrics](ctx, c, "/metrics")
}

// Healthz checks liveness (GET /healthz).
func (c *Client) Healthz(ctx context.Context) error {
	var resp struct {
		Status string `json:"status"`
	}
	if err := c.call(ctx, http.MethodGet, "/healthz", nil, &resp); err != nil {
		return err
	}
	if resp.Status != "ok" {
		return &APIError{Status: http.StatusOK, Message: "status " + resp.Status, Endpoint: "/healthz"}
	}
	return nil
}
