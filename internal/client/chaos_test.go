package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/calcm/heterosim/internal/faultinject"
	"github.com/calcm/heterosim/internal/server"
	"github.com/calcm/heterosim/internal/telemetry"
)

// chaosLog is a mutex-guarded sink the injector's slog handler writes
// to while worker goroutines hammer the loop.
type chaosLog struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (l *chaosLog) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.Write(p)
}

func (l *chaosLog) Lines() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := strings.TrimSpace(l.buf.String())
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// TestChaosLoop drives the full client -> injector -> server loop with a
// fixed fault seed: injected latency, 5xx, connection resets, and
// truncated bodies land on real evaluations with real admission control
// and request deadlines behind them. The contract under test:
//
//   - every valid request eventually succeeds or fails with a typed
//     error (*APIError or *RetryError) — never an untyped one, never a
//     hang past its deadline;
//   - invalid requests come back as terminal 4xx *APIError (possibly
//     after fault-driven retries) and are never silently "fixed";
//   - every injected fault emits exactly one structured log line, and
//     each line carries the originating request ID — so any failure in
//     the mix is traceable from the client call that hit it;
//   - when the dust settles no goroutines are leaked.
//
// Run under -race this also shakes out data races across the cache,
// gate, and injector.
func TestChaosLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos loop takes a few seconds")
	}
	before := runtime.NumGoroutine()

	srv, err := server.New(server.Config{
		Workers:        2,
		CacheEntries:   8, // small: force evictions so the stale tier sees action
		MaxInflight:    4,
		MaxQueue:       8,
		QueueTimeout:   200 * time.Millisecond,
		RequestTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faultinject.New(faultinject.Config{
		Seed:      42,
		LatencyP:  0.10,
		Latency:   5 * time.Millisecond,
		ErrorP:    0.10,
		ResetP:    0.05,
		TruncateP: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	var faultLog chaosLog
	inj.SetLogger(slog.New(slog.NewJSONHandler(&faultLog, nil)))
	ts := httptest.NewServer(inj.Wrap(srv.Handler()))

	c, err := New(Config{
		BaseURL:     ts.URL,
		MaxAttempts: 8,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		goroutines = 8
		perWorker  = 12
	)
	var (
		successes atomic.Int64
		retried   atomic.Int64 // typed give-ups after exhausting attempts
		wg        sync.WaitGroup
	)
	overall, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ctx, cancel := context.WithTimeout(overall, 15*time.Second)
				// Each logical call carries a known request ID; the client
				// forwards it on every retry attempt, so any fault this
				// call meets must be logged under this exact ID.
				ctx = telemetry.WithRequestID(ctx, fmt.Sprintf("chaos-g%d-i%d", g, i))
				switch i % 4 {
				case 0, 1: // valid optimize; a handful of distinct f values so the cache both hits and evicts
					req := server.OptimizeRequest{Workload: "MMM", F: 0.90 + 0.001*float64((g+i)%12)}
					req.Design.Kind = "sym"
					_, err := c.Optimize(ctx, req)
					checkValidOutcome(t, fmt.Sprintf("worker %d optimize %d", g, i), err, &successes, &retried)
				case 2: // valid sweep, small grid
					req := server.SweepRequest{Workload: "BS"}
					req.Design.Kind = "het"
					req.Design.Device = "gtx285"
					req.F.Lo = 0.9
					req.F.Hi = 0.99
					req.F.Steps = 4
					_, err := c.Sweep(ctx, req)
					checkValidOutcome(t, fmt.Sprintf("worker %d sweep %d", g, i), err, &successes, &retried)
				case 3: // invalid on purpose: unknown workload is a terminal 400
					req := server.OptimizeRequest{Workload: "quantum-abacus", F: 0.5}
					req.Design.Kind = "sym"
					_, err := c.Optimize(ctx, req)
					if err == nil {
						t.Errorf("worker %d request %d: invalid workload succeeded", g, i)
						break
					}
					var ae *APIError
					var re *RetryError
					switch {
					case errors.As(err, &ae):
						if ae.Status != 400 {
							t.Errorf("worker %d request %d: invalid workload got status %d, want 400", g, i, ae.Status)
						}
					case errors.As(err, &re):
						retried.Add(1) // faults ate every attempt before a clean 400 landed
					default:
						t.Errorf("worker %d request %d: untyped error %v", g, i, err)
					}
				}
				cancel()
			}
		}(g)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-overall.Done():
		t.Fatal("chaos loop hung past the overall deadline")
	}
	ts.Close()

	st := inj.Stats()
	t.Logf("injector: %+v; client: %d successes, %d typed give-ups", st, successes.Load(), retried.Load())
	if st.Errors+st.Resets+st.Truncates == 0 {
		t.Error("the fault mix never fired; the loop proved nothing")
	}
	if successes.Load() == 0 {
		t.Error("no request ever succeeded through the fault mix")
	}

	// Audit the structured fault ledger: one line per injected fault,
	// kind counts matching the injector's own counters, and every line
	// attributed to a request ID this test issued.
	issued := make(map[string]bool)
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perWorker; i++ {
			issued[fmt.Sprintf("chaos-g%d-i%d", g, i)] = true
		}
	}
	kindCounts := make(map[string]int64)
	for _, line := range faultLog.Lines() {
		var entry struct {
			Msg  string `json:"msg"`
			Kind string `json:"kind"`
			ID   string `json:"id"`
		}
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("unparseable fault log line %q: %v", line, err)
		}
		if entry.Msg != "fault injected" {
			t.Errorf("unexpected log line from injector: %q", line)
			continue
		}
		kindCounts[entry.Kind]++
		if !issued[entry.ID] {
			t.Errorf("fault line carries unknown request ID %q (kind %s)", entry.ID, entry.Kind)
		}
	}
	for kind, want := range map[string]int64{
		"latency": st.Latencies, "error": st.Errors,
		"reset": st.Resets, "truncate": st.Truncates,
	} {
		if got := kindCounts[kind]; got != want {
			t.Errorf("fault log has %d %q lines, injector counted %d", got, kind, want)
		}
	}

	// Goroutine-leak check: allow the runtime a moment to reap handler
	// and transport goroutines, then require we are back near baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+5 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// checkValidOutcome asserts the error (if any) for a well-formed request
// is typed and transient-shaped, never an untyped failure.
func checkValidOutcome(t *testing.T, label string, err error, successes, retried *atomic.Int64) {
	t.Helper()
	if err == nil {
		successes.Add(1)
		return
	}
	var ae *APIError
	var re *RetryError
	switch {
	case errors.As(err, &re):
		retried.Add(1)
	case errors.As(err, &ae):
		// A valid request can still meet overload statuses terminally
		// only via RetryError; a direct APIError here must be one the
		// server really produces for load or deadline pressure.
		if ae.Status != 429 && ae.Status != 503 && ae.Status != 504 {
			t.Errorf("%s: unexpected terminal APIError %v", label, ae)
		}
	default:
		t.Errorf("%s: untyped error %v", label, err)
	}
}
