package client

import (
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/calcm/heterosim/internal/server"
)

// TestFrontierStream drives the typed frontier stream against a real
// in-process server: header identity, one row per roadmap node, a
// trailer whose crossover table lists every (het, CMP) pair.
func TestFrontierStream(t *testing.T) {
	ts := realServer(t)
	c, err := New(Config{BaseURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	var rows []server.FrontierRowJSON
	res, err := c.FrontierStream(context.Background(), server.FrontierRequest{
		Workload: "FFT-1024", F: 0.99, Scenario: 2,
	}, func(r server.FrontierRowJSON) error {
		rows = append(rows, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Header.Workload != "FFT-1024" || res.Header.Scenario != 2 || res.Header.Name == "" {
		t.Errorf("header = %+v", res.Header)
	}
	if len(rows) != res.Trailer.Nodes || res.Rows != len(rows) {
		t.Errorf("rows = %d, trailer.Nodes = %d, res.Rows = %d", len(rows), res.Trailer.Nodes, res.Rows)
	}
	if len(rows) != len(res.Header.Nodes) {
		t.Errorf("got %d rows, header lists %d nodes", len(rows), len(res.Header.Nodes))
	}
	for i, r := range rows {
		if r.Node != res.Header.Nodes[i] {
			t.Errorf("row %d: node %q, header says %q", i, r.Node, res.Header.Nodes[i])
		}
		if len(r.Points) != len(res.Header.Designs) {
			t.Errorf("row %d: %d points, header lists %d designs", i, len(r.Points), len(res.Header.Designs))
		}
	}
	if len(res.Trailer.Crossovers) == 0 {
		t.Error("trailer has no crossover table")
	}
}

// TestFrontierStreamValidation4xx: a bad request fails before any row,
// as a typed APIError — the stream never starts.
func TestFrontierStreamValidation4xx(t *testing.T) {
	ts := realServer(t)
	c, err := New(Config{BaseURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.FrontierStream(context.Background(), server.FrontierRequest{
		Workload: "MMM", F: 0.9, Scenario: 9,
	}, func(server.FrontierRowJSON) error { return nil })
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("want 400 APIError, got %v", err)
	}
}

// TestFrontierStreamRetriesEstablishment: a 503 on the first attempt
// retries onto the same endpoint and succeeds — the generic stream
// decoder inherits the buffered calls' establishment retry schedule.
func TestFrontierStreamRetriesEstablishment(t *testing.T) {
	real := realServer(t)
	var calls atomic.Int32
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, `{"error":"warming up"}`, http.StatusServiceUnavailable)
			return
		}
		http.DefaultTransport.(*http.Transport).CloseIdleConnections()
		proxy, err := http.NewRequestWithContext(r.Context(), r.Method, real.URL+r.URL.String(), r.Body)
		if err != nil {
			t.Error(err)
			return
		}
		proxy.Header = r.Header
		res, err := http.DefaultTransport.RoundTrip(proxy)
		if err != nil {
			t.Error(err)
			return
		}
		defer res.Body.Close()
		w.WriteHeader(res.StatusCode)
		buf := make([]byte, 32<<10)
		for {
			n, rerr := res.Body.Read(buf)
			if n > 0 {
				w.Write(buf[:n])
			}
			if rerr != nil {
				return
			}
		}
	}))
	defer flaky.Close()
	c, err := New(Config{BaseURL: flaky.URL, MaxAttempts: 3, BaseBackoff: 1})
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	res, err := c.FrontierStream(context.Background(), server.FrontierRequest{Workload: "MMM", F: 0.9},
		func(server.FrontierRowJSON) error { rows++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Errorf("calls = %d, want 2 (one 503, one success)", calls.Load())
	}
	if rows == 0 || res.Trailer.Nodes != rows {
		t.Errorf("rows = %d, trailer.Nodes = %d", rows, res.Trailer.Nodes)
	}
}

// TestCompareTyped drives the buffered compare through the typed
// client: per-pair rows and deltas, cache hit on the second call.
func TestCompareTyped(t *testing.T) {
	ts := realServer(t)
	var cache []string
	c, err := New(Config{BaseURL: ts.URL, OnAttempt: func(_ context.Context, a Attempt) {
		cache = append(cache, a.Cache)
	}})
	if err != nil {
		t.Fatal(err)
	}
	req := server.CompareRequest{
		Workload: "MMM", F: 0.99,
		Pairs: []server.ComparePair{{Scenario: 1}, {Scenario: 5}},
	}
	resp, err := c.Compare(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Pairs) != 2 {
		t.Fatalf("got %d pairs, want 2", len(resp.Pairs))
	}
	for _, p := range resp.Pairs {
		if len(p.Rows) != len(resp.Nodes) || len(p.Deltas) != len(resp.Nodes) {
			t.Errorf("pair %d: %d rows, %d delta rows, want %d", p.Scenario, len(p.Rows), len(p.Deltas), len(resp.Nodes))
		}
		if len(p.Crossovers) == 0 {
			t.Errorf("pair %d: no crossovers", p.Scenario)
		}
	}
	if _, err := c.Compare(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if len(cache) != 2 || cache[0] != "miss" || cache[1] != "hit" {
		t.Errorf("cache outcomes = %v, want [miss hit]", cache)
	}
}

// fakeStream answers every POST with a fixed NDJSON body, so each
// malformed-stream shape below is exercised deterministically.
func fakeStream(t *testing.T, body string) *Client {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Write([]byte(body))
	}))
	t.Cleanup(ts.Close)
	c, err := New(Config{BaseURL: ts.URL, MaxAttempts: 2, BaseBackoff: 1})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestStreamDecoderMalformedStreams holds the generic NDJSON decoder
// to its failure contract, shape by shape: a server that answers 200
// but then violates the header/rows/trailer grammar must surface a
// typed error, and rows delivered before the violation are reported so
// the caller knows the call is no longer transparently repeatable.
func TestStreamDecoderMalformedStreams(t *testing.T) {
	header := `{"workload":"MMM","f":0.9,"scenario":1,"name":"x","nodes":["40nm"],"designs":["(0) SymCMP"]}` + "\n"
	row := `{"node":"40nm","points":[{"label":"(0) SymCMP","kind":"sym","valid":false}]}` + "\n"
	cases := []struct {
		name, body, wantErr string
	}{
		{"empty body", "", "reading stream header"},
		{"garbage header", "not json\n", "decoding stream header"},
		{"undecodable line", header + "{bad\n", "undecodable stream line"},
		{"half-written line", header + row + `{"node":"32nm"`, "stream truncated after 1 row(s)"},
		{"no trailer", header + row, "stream truncated after 1 row(s)"},
		{"in-band error", header + row + `{"error":"evaluation exploded"}` + "\n", "stream error after 1 row(s): evaluation exploded"},
		{"garbage trailer", header + row + `{"nodes":1,"crossovers":"x"}` + "\n", "decoding stream trailer"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := fakeStream(t, tc.body)
			_, err := c.FrontierStream(context.Background(), server.FrontierRequest{Workload: "MMM", F: 0.9},
				func(server.FrontierRowJSON) error { return nil })
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want it to contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestStreamCallGuards: the stream entry points reject impossible
// calls before touching the wire — a missing row callback and an
// unmarshalable request body are the caller's bugs, never retried.
func TestStreamCallGuards(t *testing.T) {
	c := fakeStream(t, "")
	if _, err := c.FrontierStream(context.Background(), server.FrontierRequest{Workload: "MMM", F: 0.9}, nil); err == nil ||
		!strings.Contains(err.Error(), "requires a row callback") {
		t.Errorf("nil callback err = %v", err)
	}
	_, err := c.FrontierStream(context.Background(), server.FrontierRequest{Workload: "MMM", F: math.NaN()},
		func(server.FrontierRowJSON) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "encoding request") {
		t.Errorf("NaN request err = %v", err)
	}
	// A nil context is tolerated (Background), not a panic.
	if _, err := c.FrontierStream(nil, server.FrontierRequest{Workload: "MMM", F: 0.9}, //nolint:staticcheck
		func(server.FrontierRowJSON) error { return nil }); err == nil {
		t.Error("fake empty stream should fail, not hang")
	}
}

// TestStreamRetryAfterFloorsBackoff: a 429 whose Retry-After exceeds
// the computed backoff floors the next attempt's wait, on the stream
// path exactly as on the buffered one.
func TestStreamRetryAfterFloorsBackoff(t *testing.T) {
	real := realServer(t)
	var calls atomic.Int32
	gated := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"saturated"}`, http.StatusTooManyRequests)
			return
		}
		http.Redirect(w, r, real.URL+r.URL.String(), http.StatusTemporaryRedirect)
	}))
	defer gated.Close()
	sl := &recordingSleeper{}
	c, err := New(Config{BaseURL: gated.URL, MaxAttempts: 3, BaseBackoff: time.Millisecond, Sleeper: sl})
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	if _, err := c.FrontierStream(context.Background(), server.FrontierRequest{Workload: "MMM", F: 0.9},
		func(server.FrontierRowJSON) error { rows++; return nil }); err != nil {
		t.Fatal(err)
	}
	if rows == 0 {
		t.Error("no rows after retry")
	}
	if waits := sl.recorded(); len(waits) != 1 || waits[0] < time.Second {
		t.Errorf("waits = %v, want one wait floored at the server's 1s Retry-After", waits)
	}
}

// TestTypedEndpointWrappers sweeps every remaining typed endpoint
// method once against a real server, so each wrapper's path string and
// request/response pairing stays compile- and wire-checked.
func TestTypedEndpointWrappers(t *testing.T) {
	ts := realServer(t)
	c, err := New(Config{BaseURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	pr, err := c.Project(ctx, server.ProjectRequest{Workload: "MMM", F: 0.9})
	if err != nil || len(pr.Trajectories) == 0 {
		t.Errorf("Project = (%+v, %v)", pr, err)
	}
	sc, err := c.Scenario(ctx, server.ScenarioRequest{Scenario: 5, Workload: "MMM", F: 0.9})
	if err != nil {
		t.Errorf("Scenario: %v", err)
	} else if sc.Name == "" {
		t.Errorf("Scenario: empty name in %+v", sc)
	}
	se, err := c.Sensitivity(ctx, server.SensitivityRequest{
		Workload: "MMM", F: 0.9, Design: server.DesignSpec{Kind: "sym"}, Samples: 16,
	})
	if err != nil {
		t.Errorf("Sensitivity: %v", err)
	} else if se.MonteCarlo.Samples != 16 {
		t.Errorf("Sensitivity: samples = %d, want 16", se.MonteCarlo.Samples)
	}
	ab, err := c.Ablation(ctx, server.AblationRequest{Workload: "MMM", F: 0.9, Node: "22nm"})
	if err != nil || len(ab.Studies) == 0 {
		t.Errorf("Ablation = (%+v, %v)", ab, err)
	}
	ms, err := c.Models(ctx)
	if err != nil || len(ms.Models) == 0 || ms.Default == "" {
		t.Errorf("Models = (%+v, %v)", ms, err)
	}
}

// TestErrorStrings pins the three error types' rendered forms — these
// land in operator logs, so their shape is part of the surface.
func TestErrorStrings(t *testing.T) {
	ae := &APIError{Status: 422, Message: "infeasible", Endpoint: "/v1/optimize"}
	if got := ae.Error(); got != "client: /v1/optimize: server returned 422: infeasible" {
		t.Errorf("APIError = %q", got)
	}
	te := &TransportError{Endpoint: "/v1/sweep", Err: errors.New("connection refused")}
	if got := te.Error(); got != "client: /v1/sweep: connection refused" {
		t.Errorf("TransportError = %q", got)
	}
	re := &RetryError{Endpoint: "/v1/compare", Attempts: 3, Last: te}
	if got := re.Error(); got != "client: /v1/compare: gave up after 3 attempt(s): client: /v1/sweep: connection refused" {
		t.Errorf("RetryError = %q", got)
	}
	if !errors.Is(re, te) {
		t.Error("RetryError must unwrap to its last attempt error")
	}
}
