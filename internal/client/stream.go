package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"time"

	"github.com/calcm/heterosim/internal/server"
	"github.com/calcm/heterosim/internal/telemetry"
)

// This file is the client side of the multi-result surfaces: the batch
// fan-out (one POST, many typed results), the buffered compare (one
// POST, k scenario x model results), and the NDJSON streams — one
// generic header/rows/trailer decoder with establishment-only retries,
// instantiated per endpoint (sweep cells, frontier nodes).

// Batch runs a heterogeneous list of registry ops in one exchange
// (POST /v1/batch). The call retries like any other — the batch
// answers 200 whenever its envelope was well-formed — but per-item
// failures come back inside the response, itemized with the status the
// standalone endpoint would have produced; they are the caller's to
// inspect, never retried by the client.
func (c *Client) Batch(ctx context.Context, req server.BatchRequest) (*server.BatchResponse, error) {
	return post[server.BatchRequest, server.BatchResponse](ctx, c, "/v1/batch", req)
}

// Compare runs k scenario x model pairs server-side (POST /v1/compare)
// and returns the per-node deltas and crossover table. It is a plain
// buffered registry op: cached, coalesced, and retried like any other.
func (c *Client) Compare(ctx context.Context, req server.CompareRequest) (*server.CompareResponse, error) {
	return post[server.CompareRequest, server.CompareResponse](ctx, c, "/v1/compare", req)
}

// SweepStreamResult summarizes one completed sweep stream: the header
// and trailer lines, plus how many rows the callback saw (always the
// full grid size on success).
type SweepStreamResult struct {
	Header  server.SweepStreamHeader
	Trailer server.SweepStreamTrailer
	Rows    int
}

// sweepStreamPath is the streamed form of the sweep endpoint.
const sweepStreamPath = "/v1/sweep?stream=ndjson"

// SweepStream evaluates a sweep as NDJSON (POST /v1/sweep?stream=ndjson),
// invoking row once per grid cell in flat row-major order — the exact
// order and bytes of the buffered response's points array — without
// ever holding the whole surface in memory. A row callback error stops
// the stream and surfaces to the caller.
//
// Retries only happen before the first row is delivered: establishment
// failures (connection errors, 429/5xx) go through the same
// backoff/failover schedule as buffered calls, but once the callback
// has seen a row the call is no longer transparently repeatable — rows
// would be delivered twice — so mid-stream failures are terminal.
func (c *Client) SweepStream(ctx context.Context, req server.SweepRequest, row func(server.SweepPointJSON) error) (*SweepStreamResult, error) {
	out := &SweepStreamResult{}
	rows, err := streamCall(ctx, c, sweepStreamPath, req, &out.Header, &out.Trailer, row)
	if err != nil {
		return nil, err
	}
	out.Rows = rows
	return out, nil
}

// FrontierStreamResult summarizes one completed frontier stream.
type FrontierStreamResult struct {
	Header  server.FrontierStreamHeader
	Trailer server.FrontierStreamTrailer
	Rows    int
}

// frontierStreamPath is the frontier's stream-only endpoint.
const frontierStreamPath = "/v1/frontier/stream"

// FrontierStream evaluates one trajectory set as NDJSON (POST
// /v1/frontier/stream), invoking row once per roadmap node in roadmap
// order with the whole design frontier at that node. The retry
// contract is SweepStream's: establishment-only.
func (c *Client) FrontierStream(ctx context.Context, req server.FrontierRequest, row func(server.FrontierRowJSON) error) (*FrontierStreamResult, error) {
	out := &FrontierStreamResult{}
	rows, err := streamCall(ctx, c, frontierStreamPath, req, &out.Header, &out.Trailer, row)
	if err != nil {
		return nil, err
	}
	out.Rows = rows
	return out, nil
}

// retryAfterOf extracts the server's Retry-After floor from a prior
// attempt's error, when it carried one.
func retryAfterOf(err error) time.Duration {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.retryAfter
	}
	return 0
}

// streamCall is the generic NDJSON stream exchange with the client's
// retry schedule, shared by every streaming endpoint: marshal the
// request once, then attempt until a stream completes or delivers —
// establishment failures (connection errors, 429/5xx) retry with
// backoff and failover exactly like buffered calls, but once a row has
// reached the callback the call is no longer transparently repeatable,
// so mid-stream failures are terminal. hdr and trl receive the decoded
// header and trailer lines; the returned int counts delivered rows.
func streamCall[Row any](ctx context.Context, c *Client, path string, req any, hdr, trl any, row func(Row) error) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if row == nil {
		return 0, fmt.Errorf("client: %s requires a row callback", path)
	}
	id := telemetry.SanitizeRequestID(telemetry.RequestID(ctx))
	if id == "" {
		id = telemetry.NewRequestID()
	}
	body, err := json.Marshal(req)
	if err != nil {
		return 0, fmt.Errorf("client: %s: encoding request: %w", path, err)
	}
	var last error
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			if err := c.pace(ctx, c.backoff(attempt-1, retryAfterOf(last))); err != nil {
				return 0, c.giveUp(ctx, &RetryError{Endpoint: path, Attempts: attempt - 1, Last: last}, id)
			}
		}
		idx := c.cur.Load()
		base := c.endpoints[int(idx)%len(c.endpoints)]
		delivered, err := attemptStream(ctx, c, base, path, body, id, attempt, hdr, trl, row)
		if err == nil {
			return delivered, nil
		}
		if delivered > 0 || !retryable(err) {
			// Rows already reached the callback: repeating the call would
			// deliver them twice, so the failure is the caller's.
			return 0, err
		}
		c.failover(idx)
		last = err
		if c.cfg.Logger != nil {
			c.cfg.Logger.LogAttrs(ctx, slog.LevelWarn, "attempt failed",
				slog.String("id", id), slog.String("endpoint", path),
				slog.Int("attempt", attempt), slog.String("error", err.Error()))
		}
		if ctx.Err() != nil {
			return 0, c.giveUp(ctx, &RetryError{Endpoint: path, Attempts: attempt, Last: last}, id)
		}
	}
	return 0, c.giveUp(ctx, &RetryError{Endpoint: path, Attempts: c.cfg.MaxAttempts, Last: last}, id)
}

// streamProbe classifies one NDJSON line. Row lines never carry an
// "error", "feasible", or "nodes" key (neither SweepPointJSON nor
// FrontierRowJSON has one), the in-band error line always carries
// "error", and every trailer carries its marker key — "feasible" for
// the sweep, "nodes" (a count, never in a row) for the frontier — so
// pointer presence decides the line's kind. A new stream endpoint adds
// its trailer marker here.
type streamProbe struct {
	Error    *string `json:"error"`
	Feasible *int    `json:"feasible"`
	Nodes    *int    `json:"nodes"`
}

func (p *streamProbe) trailer() bool { return p.Feasible != nil || p.Nodes != nil }

// attemptStream is one wire exchange of an NDJSON stream: POST the
// body, decode the header line into hdr, hand decoded row lines to the
// callback as they arrive, and finish on the trailer line (decoded
// into trl) or an in-band error line. delivered counts rows handed to
// the callback — the caller uses it to decide whether a failure is
// still transparently retryable.
func attemptStream[Row any](ctx context.Context, c *Client, base, path string, body []byte, id string, n int, hdr, trl any, row func(Row) error) (delivered int, err error) {
	a := Attempt{Endpoint: path, N: n}
	if c.cfg.OnAttempt != nil {
		defer func() {
			a.Err = err
			c.cfg.OnAttempt(ctx, a)
		}()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(body))
	if err != nil {
		return 0, fmt.Errorf("client: %s: %w", path, err)
	}
	req.Header.Set(telemetry.HeaderRequestID, id)
	req.Header.Set("Content-Type", "application/json")
	res, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return 0, &TransportError{Endpoint: path, Err: err}
	}
	defer res.Body.Close()
	a.Status = res.StatusCode
	a.Cache = res.Header.Get("X-Heterosim-Cache")
	a.Fault = res.Header.Get("X-Fault-Injected")
	if res.StatusCode != http.StatusOK {
		payload, rerr := io.ReadAll(io.LimitReader(res.Body, 64<<20))
		if rerr != nil {
			return 0, &TransportError{Endpoint: path, Err: rerr}
		}
		return 0, apiErrorFrom(res, payload, path)
	}

	br := bufio.NewReader(res.Body)
	line, err := readLine(br)
	if err != nil {
		return 0, &TransportError{Endpoint: path, Err: fmt.Errorf("reading stream header: %w", err)}
	}
	if err := json.Unmarshal(line, hdr); err != nil {
		return 0, &TransportError{Endpoint: path, Err: fmt.Errorf("decoding stream header: %w", err)}
	}
	for {
		line, err := readLine(br)
		if err != nil {
			// The stream ended without a trailer: truncated. Terminal
			// when rows were already delivered, retryable otherwise.
			return delivered, &TransportError{Endpoint: path, Err: fmt.Errorf("stream truncated after %d row(s): %w", delivered, err)}
		}
		var probe streamProbe
		if err := json.Unmarshal(line, &probe); err != nil {
			return delivered, &TransportError{Endpoint: path, Err: fmt.Errorf("undecodable stream line: %w", err)}
		}
		switch {
		case probe.Error != nil:
			// In-band failure after the 200 header: the server could not
			// finish the evaluation. Terminal — the same request will fail
			// the same way for validation errors, and for deadline errors
			// the caller's context decides.
			return delivered, fmt.Errorf("client: %s: stream error after %d row(s): %s", path, delivered, *probe.Error)
		case probe.trailer():
			if err := json.Unmarshal(line, trl); err != nil {
				return delivered, &TransportError{Endpoint: path, Err: fmt.Errorf("decoding stream trailer: %w", err)}
			}
			return delivered, nil
		default:
			var r Row
			if err := json.Unmarshal(line, &r); err != nil {
				return delivered, &TransportError{Endpoint: path, Err: fmt.Errorf("decoding stream row: %w", err)}
			}
			delivered++
			if err := row(r); err != nil {
				return delivered, fmt.Errorf("client: %s: row callback: %w", path, err)
			}
		}
	}
}

// readLine reads one NDJSON line, rejecting EOF-without-newline as
// truncation so a half-written line never decodes as complete.
func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadBytes('\n')
	if err != nil {
		if err == io.EOF && len(line) > 0 {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return bytes.TrimSuffix(line, []byte{'\n'}), nil
}
