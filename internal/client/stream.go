package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"time"

	"github.com/calcm/heterosim/internal/server"
	"github.com/calcm/heterosim/internal/telemetry"
)

// This file is the client side of the two multi-result surfaces: the
// batch fan-out (one POST, many typed results) and the NDJSON sweep
// stream (one POST, rows delivered as they are computed).

// Batch runs a heterogeneous list of registry ops in one exchange
// (POST /v1/batch). The call retries like any other — the batch
// answers 200 whenever its envelope was well-formed — but per-item
// failures come back inside the response, itemized with the status the
// standalone endpoint would have produced; they are the caller's to
// inspect, never retried by the client.
func (c *Client) Batch(ctx context.Context, req server.BatchRequest) (*server.BatchResponse, error) {
	return post[server.BatchRequest, server.BatchResponse](ctx, c, "/v1/batch", req)
}

// SweepStreamResult summarizes one completed sweep stream: the header
// and trailer lines, plus how many rows the callback saw (always the
// full grid size on success).
type SweepStreamResult struct {
	Header  server.SweepStreamHeader
	Trailer server.SweepStreamTrailer
	Rows    int
}

// sweepStreamPath is the streamed form of the sweep endpoint.
const sweepStreamPath = "/v1/sweep?stream=ndjson"

// SweepStream evaluates a sweep as NDJSON (POST /v1/sweep?stream=ndjson),
// invoking row once per grid cell in flat row-major order — the exact
// order and bytes of the buffered response's points array — without
// ever holding the whole surface in memory. A row callback error stops
// the stream and surfaces to the caller.
//
// Retries only happen before the first row is delivered: establishment
// failures (connection errors, 429/5xx) go through the same
// backoff/failover schedule as buffered calls, but once the callback
// has seen a row the call is no longer transparently repeatable — rows
// would be delivered twice — so mid-stream failures are terminal.
func (c *Client) SweepStream(ctx context.Context, req server.SweepRequest, row func(server.SweepPointJSON) error) (*SweepStreamResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if row == nil {
		return nil, errors.New("client: SweepStream requires a row callback")
	}
	id := telemetry.SanitizeRequestID(telemetry.RequestID(ctx))
	if id == "" {
		id = telemetry.NewRequestID()
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: %s: encoding request: %w", sweepStreamPath, err)
	}
	var last error
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			if err := c.pace(ctx, c.backoff(attempt-1, retryAfterOf(last))); err != nil {
				return nil, c.giveUp(ctx, &RetryError{Endpoint: sweepStreamPath, Attempts: attempt - 1, Last: last}, id)
			}
		}
		idx := c.cur.Load()
		base := c.endpoints[int(idx)%len(c.endpoints)]
		res, delivered, err := c.attemptStream(ctx, base, body, id, attempt, row)
		if err == nil {
			return res, nil
		}
		if delivered > 0 || !retryable(err) {
			// Rows already reached the callback: repeating the call would
			// deliver them twice, so the failure is the caller's.
			return nil, err
		}
		c.failover(idx)
		last = err
		if c.cfg.Logger != nil {
			c.cfg.Logger.LogAttrs(ctx, slog.LevelWarn, "attempt failed",
				slog.String("id", id), slog.String("endpoint", sweepStreamPath),
				slog.Int("attempt", attempt), slog.String("error", err.Error()))
		}
		if ctx.Err() != nil {
			return nil, c.giveUp(ctx, &RetryError{Endpoint: sweepStreamPath, Attempts: attempt, Last: last}, id)
		}
	}
	return nil, c.giveUp(ctx, &RetryError{Endpoint: sweepStreamPath, Attempts: c.cfg.MaxAttempts, Last: last}, id)
}

// retryAfterOf extracts the server's Retry-After floor from a prior
// attempt's error, when it carried one.
func retryAfterOf(err error) time.Duration {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.retryAfter
	}
	return 0
}

// streamProbe classifies one NDJSON line. Row lines never carry an
// "error" or "feasible" key (SweepPointJSON has neither), the trailer
// always carries "feasible", and the in-band error line always carries
// "error" — so pointer presence decides the line's kind.
type streamProbe struct {
	Error    *string `json:"error"`
	Feasible *int    `json:"feasible"`
}

// attemptStream is one wire exchange of a sweep stream. delivered
// counts rows handed to the callback — the caller uses it to decide
// whether a failure is still transparently retryable.
func (c *Client) attemptStream(ctx context.Context, base string, body []byte, id string, n int, row func(server.SweepPointJSON) error) (out *SweepStreamResult, delivered int, err error) {
	a := Attempt{Endpoint: sweepStreamPath, N: n}
	if c.cfg.OnAttempt != nil {
		defer func() {
			a.Err = err
			c.cfg.OnAttempt(ctx, a)
		}()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+sweepStreamPath, bytes.NewReader(body))
	if err != nil {
		return nil, 0, fmt.Errorf("client: %s: %w", sweepStreamPath, err)
	}
	req.Header.Set(telemetry.HeaderRequestID, id)
	req.Header.Set("Content-Type", "application/json")
	res, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, 0, &TransportError{Endpoint: sweepStreamPath, Err: err}
	}
	defer res.Body.Close()
	a.Status = res.StatusCode
	a.Cache = res.Header.Get("X-Heterosim-Cache")
	a.Fault = res.Header.Get("X-Fault-Injected")
	if res.StatusCode != http.StatusOK {
		payload, rerr := io.ReadAll(io.LimitReader(res.Body, 64<<20))
		if rerr != nil {
			return nil, 0, &TransportError{Endpoint: sweepStreamPath, Err: rerr}
		}
		return nil, 0, apiErrorFrom(res, payload, sweepStreamPath)
	}

	br := bufio.NewReader(res.Body)
	line, err := readLine(br)
	if err != nil {
		return nil, 0, &TransportError{Endpoint: sweepStreamPath, Err: fmt.Errorf("reading stream header: %w", err)}
	}
	result := &SweepStreamResult{}
	if err := json.Unmarshal(line, &result.Header); err != nil {
		return nil, 0, &TransportError{Endpoint: sweepStreamPath, Err: fmt.Errorf("decoding stream header: %w", err)}
	}
	for {
		line, err := readLine(br)
		if err != nil {
			// The stream ended without a trailer: truncated. Terminal
			// when rows were already delivered, retryable otherwise.
			return nil, delivered, &TransportError{Endpoint: sweepStreamPath, Err: fmt.Errorf("stream truncated after %d row(s): %w", delivered, err)}
		}
		var probe streamProbe
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, delivered, &TransportError{Endpoint: sweepStreamPath, Err: fmt.Errorf("undecodable stream line: %w", err)}
		}
		switch {
		case probe.Error != nil:
			// In-band failure after the 200 header: the server could not
			// finish the sweep. Terminal — the same request will fail the
			// same way for validation errors, and for deadline errors the
			// caller's context decides.
			return nil, delivered, fmt.Errorf("client: %s: stream error after %d row(s): %s", sweepStreamPath, delivered, *probe.Error)
		case probe.Feasible != nil:
			if err := json.Unmarshal(line, &result.Trailer); err != nil {
				return nil, delivered, &TransportError{Endpoint: sweepStreamPath, Err: fmt.Errorf("decoding stream trailer: %w", err)}
			}
			result.Rows = delivered
			return result, delivered, nil
		default:
			var p server.SweepPointJSON
			if err := json.Unmarshal(line, &p); err != nil {
				return nil, delivered, &TransportError{Endpoint: sweepStreamPath, Err: fmt.Errorf("decoding stream row: %w", err)}
			}
			delivered++
			if err := row(p); err != nil {
				return nil, delivered, fmt.Errorf("client: %s: row callback: %w", sweepStreamPath, err)
			}
		}
	}
}

// readLine reads one NDJSON line, rejecting EOF-without-newline as
// truncation so a half-written line never decodes as complete.
func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadBytes('\n')
	if err != nil {
		if err == io.EOF && len(line) > 0 {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return bytes.TrimSuffix(line, []byte{'\n'}), nil
}
