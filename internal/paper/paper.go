// Package paper holds the published numbers from Chung et al. (MICRO
// 2010) as Go data: the device summary (Table 2), the workload matrix
// (Table 3), the measured MMM/Black-Scholes results (Table 4), the derived
// U-core parameters (Table 5), and assorted constants from the text.
//
// These values serve three purposes in the reproduction:
//
//  1. Calibration targets — the device simulator's analytic models are fit
//     so that simulated measurements reproduce them.
//  2. Test oracles — the calibration pipeline re-derives Table 5 from
//     simulated measurements and asserts agreement with the published
//     values.
//  3. Report baselines — EXPERIMENTS.md compares regenerated outputs
//     against them.
package paper

// DeviceID identifies one of the measured platforms.
type DeviceID string

// The six devices of Table 2, plus the derived BCE reference.
const (
	CoreI7 DeviceID = "Core i7-960"
	GTX285 DeviceID = "GTX285"
	GTX480 DeviceID = "GTX480"
	R5870  DeviceID = "R5870"
	LX760  DeviceID = "V6-LX760"
	ASIC   DeviceID = "ASIC"
)

// AllDevices lists the devices in the paper's column order.
var AllDevices = []DeviceID{CoreI7, GTX285, GTX480, R5870, LX760, ASIC}

// WorkloadID identifies one of the studied kernels.
type WorkloadID string

// The three workloads of Table 3. FFT carries an input size; the three
// sizes of Table 5 get their own IDs.
const (
	MMM      WorkloadID = "MMM"
	BS       WorkloadID = "BS"
	FFT64    WorkloadID = "FFT-64"
	FFT1024  WorkloadID = "FFT-1024"
	FFT16384 WorkloadID = "FFT-16384"
)

// AllWorkloads lists the Table 5 column order.
var AllWorkloads = []WorkloadID{MMM, BS, FFT64, FFT1024, FFT16384}

// Constants from the modeling sections.
const (
	// Alpha is the sequential power-law exponent (Grochowski et al.).
	Alpha = 1.75
	// SeqCoreBCE is r for the Core i7: one i7 core ~ 2 BCE (Atom-based).
	SeqCoreBCE = 2.0
	// AtomAreaMM2 is the Intel Atom die area at 45nm used to size the BCE.
	AtomAreaMM2 = 26.0
	// AtomNonComputeFraction is subtracted from the Atom for non-compute.
	AtomNonComputeFraction = 0.10
	// MaxSweepR is the largest sequential-core size swept in Section 6.
	MaxSweepR = 16
	// FFTBytesPerElement: single-precision complex in/out streaming
	// (16 bytes moved per point, per the paper's footnote 2 denominator).
	FFTBytesPerElement = 16.0
	// BSBytesPerOption is the compulsory traffic of one Black-Scholes
	// option evaluation (footnote: 10 bytes/option).
	BSBytesPerOption = 10.0
	// MMMBlockN is the blocking size assumed for MMM compulsory
	// bandwidth (footnote 3).
	MMMBlockN = 128.0
)

// Table2Device is one column of Table 2.
type Table2Device struct {
	ID          DeviceID
	Year        int
	Process     string  // foundry / node label as printed
	Nm          int     // feature size in nanometers
	DieAreaMM2  float64 // 0 when not published
	CoreAreaMM2 float64 // core+cache only area; 0 when not published
	ClockGHz    float64 // 0 when not applicable
	MemoryGB    float64
	MemBWGBs    float64 // platform memory bandwidth
}

// Table2 reproduces the device summary.
var Table2 = map[DeviceID]Table2Device{
	CoreI7: {ID: CoreI7, Year: 2009, Process: "Intel/45nm", Nm: 45,
		DieAreaMM2: 263, CoreAreaMM2: 193, ClockGHz: 3.2, MemoryGB: 3, MemBWGBs: 32},
	GTX285: {ID: GTX285, Year: 2008, Process: "TSMC/55nm", Nm: 55,
		DieAreaMM2: 470, CoreAreaMM2: 338, ClockGHz: 1.476, MemoryGB: 1, MemBWGBs: 159},
	GTX480: {ID: GTX480, Year: 2010, Process: "TSMC/40nm", Nm: 40,
		DieAreaMM2: 529, CoreAreaMM2: 422, ClockGHz: 1.4, MemoryGB: 1.5, MemBWGBs: 177.4},
	R5870: {ID: R5870, Year: 2009, Process: "TSMC/40nm", Nm: 40,
		DieAreaMM2: 334, CoreAreaMM2: 334 * 0.75, ClockGHz: 1.476, MemoryGB: 1, MemBWGBs: 153.6},
	LX760: {ID: LX760, Year: 2009, Process: "UMC-Samsung/40nm", Nm: 40,
		// The paper prices FPGA area at ~0.00191 mm^2 per LUT including
		// amortized overheads; Table 4's normalized metrics imply an
		// effective utilized-fabric area of ~385 mm^2.
		DieAreaMM2: 0, CoreAreaMM2: 385, ClockGHz: 0, MemoryGB: 0, MemBWGBs: 0},
	ASIC: {ID: ASIC, Year: 2007, Process: "65nm", Nm: 65,
		DieAreaMM2: 0, CoreAreaMM2: 0, ClockGHz: 0, MemoryGB: 0, MemBWGBs: 0},
}

// AreaPerLUTMM2 is the paper's estimated FPGA area per LUT (including
// amortized flip-flop, RAM, multiplier, and interconnect overhead).
const AreaPerLUTMM2 = 0.00191

// Table3Entry records which implementation the paper used for one
// (workload, device) pair; empty string means "not obtained".
var Table3 = map[WorkloadID]map[DeviceID]string{
	MMM: {
		CoreI7: "MKL 10.2.3", GTX285: "CUBLAS 2.3", GTX480: "CUBLAS 3.0/3.1beta",
		R5870: "CAL++", LX760: "Bluespec (by hand)", ASIC: "Bluespec (by hand)",
	},
	BS: {
		CoreI7: "PARSEC (modified)", GTX285: "CUDA 2.3", GTX480: "",
		R5870: "", LX760: "Verilog (generated)", ASIC: "Verilog (generated)",
	},
	FFT1024: {
		CoreI7: "Spiral", GTX285: "CUFFT 2.3/3.0/3.1beta", GTX480: "CUFFT 3.0/3.1beta",
		R5870: "", LX760: "Verilog (Spiral-generated)", ASIC: "Verilog (Spiral-generated)",
	},
}

// Table4Row is one device row of Table 4: absolute throughput, area-
// normalized throughput (40nm-equivalent mm^2), and energy efficiency.
// Units are GFLOP/s-family for MMM and Mopt/s-family for Black-Scholes.
type Table4Row struct {
	Throughput float64 // GFLOP/s or Mopt/s
	PerMM2     float64 // per 40nm-equivalent mm^2
	PerJoule   float64 // per joule (GFLOP/J or Mopt/J)
}

// Table4 reproduces the published MMM and Black-Scholes summary. Devices
// the paper could not measure are absent.
var Table4 = map[WorkloadID]map[DeviceID]Table4Row{
	MMM: {
		CoreI7: {96, 0.50, 1.14},
		GTX285: {425, 2.40, 6.78},
		GTX480: {541, 1.28, 3.52},
		R5870:  {1491, 5.95, 9.87},
		LX760:  {204, 0.53, 3.62},
		ASIC:   {694, 19.28, 50.73},
	},
	BS: {
		CoreI7: {487, 2.52, 4.88},
		GTX285: {10756, 60.72, 189},
		LX760:  {7800, 20.26, 138},
		ASIC:   {25532, 1719, 642.5},
	},
}

// UCoreParam is one (phi, mu) cell of Table 5.
type UCoreParam struct {
	Phi float64 // relative BCE power
	Mu  float64 // relative BCE performance
}

// Table5 reproduces the published U-core parameters. Missing device/
// workload combinations (the paper's dashes) are absent from the maps.
var Table5 = map[DeviceID]map[WorkloadID]UCoreParam{
	GTX285: {
		MMM: {0.74, 3.41}, BS: {0.57, 17.0},
		FFT64: {0.59, 2.42}, FFT1024: {0.63, 2.88}, FFT16384: {0.89, 3.75},
	},
	GTX480: {
		MMM:   {0.77, 1.83},
		FFT64: {0.39, 1.56}, FFT1024: {0.47, 2.20}, FFT16384: {0.66, 2.83},
	},
	R5870: {
		MMM: {1.27, 8.47},
	},
	LX760: {
		MMM: {0.31, 0.75}, BS: {0.26, 5.68},
		FFT64: {0.29, 2.81}, FFT1024: {0.29, 2.02}, FFT16384: {0.37, 3.02},
	},
	ASIC: {
		MMM: {0.79, 27.4}, BS: {4.75, 482},
		FFT64: {5.34, 733}, FFT1024: {4.96, 489}, FFT16384: {6.38, 689},
	},
}

// CoreI7FFTAnchors gives the synthetic-but-plausible Core i7 FFT absolute
// performance (pseudo-GFLOP/s, 5N log2 N convention) by input size, used
// to anchor the FFT measurement database. The paper publishes these only
// as curves (Figures 2-3); magnitudes here are read off those figures.
// They set plot scales only — the (mu, phi) parameters that feed the
// projections are pinned to Table 5 exactly.
var CoreI7FFTAnchors = map[int]float64{
	16:      22, // log2 N = 4
	64:      40,
	256:     50,
	1024:    55,
	4096:    50,
	16384:   44,
	65536:   41,
	262144:  39,
	1048576: 38,
}

// CoreI7FFTCorePowerW is the steady-state Core i7 core-rail power during
// FFT, approximately flat across sizes (Figure 3's left block).
const CoreI7FFTCorePowerW = 85.0

// ProjectionFractions are the parallel fractions plotted in Figures 6-10.
var ProjectionFractions = []float64{0.500, 0.900, 0.990, 0.999}

// BSProjectionFractions: Figure 8 only shows f = 0.5 and 0.9.
var BSProjectionFractions = []float64{0.500, 0.900}

// EnergyProjectionFractions: Figure 10 shows f = 0.5, 0.9, 0.99.
var EnergyProjectionFractions = []float64{0.500, 0.900, 0.990}

// FFTProjectionSize is the input size used for Section 6 FFT projections.
const FFTProjectionSize = 1024

// FFTArithmeticIntensity returns flops per byte for a size-N single-
// precision FFT per footnote 2: 5 N log2 N flops over 16 N bytes =
// 0.3125 * log2 N.
func FFTArithmeticIntensity(n int) float64 {
	return 0.3125 * log2(n)
}

// MMMArithmeticIntensity returns flops per byte for square blocked MMM
// per footnote 3: 2 N^3 / (2 * 4 N^2) = N/4 at blocking size N.
func MMMArithmeticIntensity(blockN float64) float64 {
	return blockN / 4
}

// FFT1024BytesPerFlop is the compulsory traffic used in Section 6
// (0.32 bytes/flop at N = 1024).
const FFT1024BytesPerFlop = 0.32

// MMMBytesPerFlop is the compulsory traffic at N = 128 blocking
// (0.0313 bytes/flop).
const MMMBytesPerFlop = 0.03125

func log2(n int) float64 {
	l := 0
	for v := n; v > 1; v >>= 1 {
		l++
	}
	return float64(l)
}
