package paper

import (
	"math"
	"testing"
)

func TestTable2Complete(t *testing.T) {
	for _, id := range AllDevices {
		d, ok := Table2[id]
		if !ok {
			t.Errorf("Table2 missing %s", id)
			continue
		}
		if d.ID != id {
			t.Errorf("%s: ID field mismatch", id)
		}
		if d.Nm <= 0 || d.Year < 2007 || d.Year > 2010 {
			t.Errorf("%s: implausible node/year %d/%d", id, d.Nm, d.Year)
		}
	}
	// Published die areas.
	if Table2[CoreI7].DieAreaMM2 != 263 || Table2[GTX480].DieAreaMM2 != 529 {
		t.Error("published die areas corrupted")
	}
	// R5870 core area uses the 25% non-compute assumption.
	if math.Abs(Table2[R5870].CoreAreaMM2-250.5) > 1e-9 {
		t.Errorf("R5870 core area = %g, want 250.5", Table2[R5870].CoreAreaMM2)
	}
}

func TestTable4InternallyConsistent(t *testing.T) {
	// throughput / per-mm2 must equal a plausible 40nm-equivalent area:
	// smaller than the die, positive, and consistent within each device
	// across workloads (for non-ASIC devices whose whole fabric is used).
	for w, rows := range Table4 {
		for id, row := range rows {
			if row.Throughput <= 0 || row.PerMM2 <= 0 || row.PerJoule <= 0 {
				t.Errorf("%s/%s: non-positive entries", id, w)
			}
			area := row.Throughput / row.PerMM2
			if id != ASIC && (area < 100 || area > 500) {
				t.Errorf("%s/%s: implied area %g mm² implausible", id, w, area)
			}
			// Implied power must be positive and below ~300 W.
			if pw := row.Throughput / row.PerJoule; pw <= 0 || pw > 300 {
				t.Errorf("%s/%s: implied power %g W implausible", id, w, pw)
			}
		}
	}
	// The same device implies the same normalized area on MMM and BS.
	for _, id := range []DeviceID{CoreI7, GTX285, LX760} {
		mmm := Table4[MMM][id]
		bs := Table4[BS][id]
		aMMM := mmm.Throughput / mmm.PerMM2
		aBS := bs.Throughput / bs.PerMM2
		if math.Abs(aMMM/aBS-1) > 0.03 {
			t.Errorf("%s: MMM area %g vs BS area %g diverge", id, aMMM, aBS)
		}
	}
}

func TestTable5MatchesFootnoteFormulas(t *testing.T) {
	// For every device with both Table 4 and Table 5 MMM entries, the
	// footnote-1 formulas tie them together (within published rounding).
	i7 := Table4[MMM][CoreI7]
	xI7 := i7.PerMM2
	eI7 := i7.PerJoule
	r := SeqCoreBCE
	for id, params := range Table5 {
		row, ok := Table4[MMM][id]
		if !ok {
			continue
		}
		p, ok := params[MMM]
		if !ok {
			continue
		}
		mu := row.PerMM2 / (xI7 * math.Sqrt(r))
		phi := mu * eI7 / (math.Pow(r, (1-Alpha)/2) * row.PerJoule)
		if math.Abs(mu/p.Mu-1) > 0.02 {
			t.Errorf("%s MMM: formula mu %g vs published %g", id, mu, p.Mu)
		}
		if math.Abs(phi/p.Phi-1) > 0.02 {
			t.Errorf("%s MMM: formula phi %g vs published %g", id, phi, p.Phi)
		}
	}
}

func TestArithmeticIntensityFootnotes(t *testing.T) {
	// Footnote 2: FFT AI = 0.3125 log2 N.
	if got := FFTArithmeticIntensity(1024); math.Abs(got-3.125) > 1e-12 {
		t.Errorf("FFT AI(1024) = %g", got)
	}
	if got := FFTArithmeticIntensity(64); math.Abs(got-0.3125*6) > 1e-12 {
		t.Errorf("FFT AI(64) = %g", got)
	}
	// Section 6 uses 0.32 bytes/flop for FFT-1024 = 1/3.125.
	if math.Abs(1/FFTArithmeticIntensity(FFTProjectionSize)-FFT1024BytesPerFlop) > 0.001 {
		t.Error("FFT-1024 bytes/flop constant inconsistent")
	}
	// Footnote 3: MMM AI = N/4; the constant matches at N = 128.
	if math.Abs(1/MMMArithmeticIntensity(MMMBlockN)-MMMBytesPerFlop) > 1e-12 {
		t.Error("MMM bytes/flop constant inconsistent")
	}
}

func TestProjectionConstants(t *testing.T) {
	if len(ProjectionFractions) != 4 || ProjectionFractions[0] != 0.5 || ProjectionFractions[3] != 0.999 {
		t.Errorf("projection fractions = %v", ProjectionFractions)
	}
	if len(BSProjectionFractions) != 2 {
		t.Errorf("BS fractions = %v", BSProjectionFractions)
	}
	if len(EnergyProjectionFractions) != 3 {
		t.Errorf("energy fractions = %v", EnergyProjectionFractions)
	}
	if Alpha != 1.75 || SeqCoreBCE != 2 || MaxSweepR != 16 {
		t.Error("model constants corrupted")
	}
}

func TestTable3Dashes(t *testing.T) {
	// The paper's unobtainable combinations are empty strings.
	if Table3[BS][GTX480] != "" || Table3[BS][R5870] != "" {
		t.Error("GTX480/R5870 BS should be dashes")
	}
	if Table3[FFT1024][R5870] != "" {
		t.Error("R5870 FFT should be a dash")
	}
	if Table3[MMM][CoreI7] != "MKL 10.2.3" {
		t.Errorf("i7 MMM implementation = %q", Table3[MMM][CoreI7])
	}
}

func TestFFTAnchorsCoverSweep(t *testing.T) {
	for _, n := range []int{16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576} {
		if _, ok := CoreI7FFTAnchors[n]; !ok {
			t.Errorf("missing i7 FFT anchor for N=%d", n)
		}
	}
	// Anchors are in the tens-of-GFLOP/s range Figure 2 shows.
	for n, g := range CoreI7FFTAnchors {
		if g < 10 || g > 120 {
			t.Errorf("anchor N=%d = %g GFLOP/s implausible for a 2009 CPU", n, g)
		}
	}
}
