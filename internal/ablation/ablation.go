// Package ablation quantifies what each ingredient of the paper's model
// contributes by removing it and re-running the projection — the
// reproduction's answer to "which constraint actually drives each
// conclusion?". Three ingredients are ablatable through configuration
// (the bandwidth bound, the power bound, and the sequential-core sweep)
// and one through the model family (the asymmetric-offload assumption
// versus Hill & Marty's original asymmetric machine).
package ablation

import (
	"context"
	"errors"
	"fmt"

	"github.com/calcm/heterosim/internal/amdahl"
	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/model"
	"github.com/calcm/heterosim/internal/paper"
	"github.com/calcm/heterosim/internal/par"
	"github.com/calcm/heterosim/internal/pollack"
	"github.com/calcm/heterosim/internal/project"
)

// Result compares one design with and without an ingredient.
type Result struct {
	Design   string
	Baseline float64 // speedup with the full model
	Ablated  float64 // speedup with the ingredient removed
	Ratio    float64 // Ablated / Baseline (>= 1: the ingredient binds)
}

// effectivelyInfinite stands in for "no budget" without upsetting the
// validation paths that require finite positive values.
const effectivelyInfinite = 1e12

// run projects baseline and ablated configs concurrently and pairs the
// results at one node index. workers bounds each projection's inner pool
// (<= 0 means GOMAXPROCS); results are identical at every worker count.
// Cancellation or an expired deadline on ctx stops both projections
// early and surfaces ctx.Err().
func run(ctx context.Context, base, ablated project.Config, f float64, nodeIdx, workers int, mk model.Factory) ([]Result, error) {
	base.Workers, ablated.Workers = workers, workers
	base.Model, ablated.Model = mk, mk
	configs := []project.Config{base, ablated}
	ts, err := par.Map(ctx, len(configs), workers,
		func(ctx context.Context, i int) ([]project.Trajectory, error) {
			return project.ProjectCtx(ctx, configs[i], f)
		})
	if err != nil {
		return nil, err
	}
	bs, as := ts[0], ts[1]
	if len(bs) != len(as) {
		return nil, errors.New("ablation: design lineups diverged")
	}
	out := make([]Result, 0, len(bs))
	for i := range bs {
		if nodeIdx < 0 || nodeIdx >= len(bs[i].Points) {
			return nil, fmt.Errorf("ablation: node index %d out of range", nodeIdx)
		}
		bp, ap := bs[i].Points[nodeIdx], as[i].Points[nodeIdx]
		if !bp.Valid || !ap.Valid {
			continue
		}
		r := Result{
			Design:   bs[i].Design.Label,
			Baseline: bp.Point.Speedup,
			Ablated:  ap.Point.Speedup,
		}
		r.Ratio = r.Ablated / r.Baseline
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, errors.New("ablation: no feasible design points")
	}
	return out, nil
}

// BandwidthBound removes the off-chip bandwidth constraint (B -> inf) —
// isolating the paper's "bandwidth wall" from everything else. Runs on a
// GOMAXPROCS pool; see BandwidthBoundWorkers.
func BandwidthBound(w paper.WorkloadID, f float64, nodeIdx int) ([]Result, error) {
	return BandwidthBoundWorkers(w, f, nodeIdx, 0)
}

// BandwidthBoundWorkers is BandwidthBound with an explicit worker bound
// (<= 0 means GOMAXPROCS).
func BandwidthBoundWorkers(w paper.WorkloadID, f float64, nodeIdx, workers int) ([]Result, error) {
	return bandwidthBoundCtx(context.Background(), w, f, nodeIdx, workers, nil)
}

func bandwidthBoundCtx(ctx context.Context, w paper.WorkloadID, f float64, nodeIdx, workers int, mk model.Factory) ([]Result, error) {
	base := project.DefaultConfig(w)
	ablated := base
	ablated.BaseBandwidthGBs = effectivelyInfinite
	return run(ctx, base, ablated, f, nodeIdx, workers, mk)
}

// PowerBound removes the power constraint (P -> inf) — reducing the
// model to area+bandwidth, close to pre-dark-silicon assumptions. Runs on
// a GOMAXPROCS pool; see PowerBoundWorkers.
func PowerBound(w paper.WorkloadID, f float64, nodeIdx int) ([]Result, error) {
	return PowerBoundWorkers(w, f, nodeIdx, 0)
}

// PowerBoundWorkers is PowerBound with an explicit worker bound (<= 0
// means GOMAXPROCS).
func PowerBoundWorkers(w paper.WorkloadID, f float64, nodeIdx, workers int) ([]Result, error) {
	return powerBoundCtx(context.Background(), w, f, nodeIdx, workers, nil)
}

func powerBoundCtx(ctx context.Context, w paper.WorkloadID, f float64, nodeIdx, workers int, mk model.Factory) ([]Result, error) {
	base := project.DefaultConfig(w)
	ablated := base
	ablated.PowerBudgetW = effectivelyInfinite
	return run(ctx, base, ablated, f, nodeIdx, workers, mk)
}

// SequentialSizing pins the sequential core at r = 1 instead of sweeping
// to 16 — quantifying Hill & Marty's "sequential performance still
// matters" within this model. Here the *baseline* has the ingredient, so
// Ratio <= 1 and (1 - Ratio) is the value of core sizing. Runs on a
// GOMAXPROCS pool; see SequentialSizingWorkers.
func SequentialSizing(w paper.WorkloadID, f float64, nodeIdx int) ([]Result, error) {
	return SequentialSizingWorkers(w, f, nodeIdx, 0)
}

// SequentialSizingWorkers is SequentialSizing with an explicit worker
// bound (<= 0 means GOMAXPROCS).
func SequentialSizingWorkers(w paper.WorkloadID, f float64, nodeIdx, workers int) ([]Result, error) {
	return sequentialSizingCtx(context.Background(), w, f, nodeIdx, workers, nil)
}

func sequentialSizingCtx(ctx context.Context, w paper.WorkloadID, f float64, nodeIdx, workers int, mk model.Factory) ([]Result, error) {
	base := project.DefaultConfig(w)
	ablated := base
	ablated.MaxR = 1
	return run(ctx, base, ablated, f, nodeIdx, workers, mk)
}

// Studies runs the three configuration ablations for a workload
// concurrently — the CLI `ablate` fan-out — returning them in fixed
// order: bandwidth bound, power bound, sequential sizing.
func Studies(w paper.WorkloadID, f float64, nodeIdx, workers int) ([][]Result, error) {
	return StudiesCtx(context.Background(), w, f, nodeIdx, workers)
}

// StudiesCtx is Studies bounded by a context: cancellation or an
// expired deadline stops every projection early and surfaces ctx.Err(),
// which is how the serving layer turns a request deadline into a 504.
func StudiesCtx(ctx context.Context, w paper.WorkloadID, f float64, nodeIdx, workers int) ([][]Result, error) {
	return StudiesModelCtx(ctx, w, f, nodeIdx, workers, nil)
}

// StudiesModelCtx is StudiesCtx under a model backend (nil = Chung
// baseline). The sequential-sizing study pins MaxR = 1 through the
// project.Config, so the factory sees the ablated sweep bound.
func StudiesModelCtx(ctx context.Context, w paper.WorkloadID, f float64, nodeIdx, workers int, mk model.Factory) ([][]Result, error) {
	studies := []func(context.Context, paper.WorkloadID, float64, int, int, model.Factory) ([]Result, error){
		bandwidthBoundCtx,
		powerBoundCtx,
		sequentialSizingCtx,
	}
	return par.Map(ctx, len(studies), workers,
		func(ctx context.Context, i int) ([]Result, error) {
			return studies[i](ctx, w, f, nodeIdx, workers, mk)
		})
}

// OffloadAssumption compares the paper's asymmetric-offload CMP against
// Hill & Marty's original asymmetric machine (fast core helps during
// parallel phases and keeps burning power) at fixed budgets. The original
// machine gets the fast core's parallel contribution but must fit
// perf_seq(r)'s power alongside the BCEs: n <= (P - r^(alpha/2))/1 + r.
// Returns (offload speedup, original speedup) maximized over r.
func OffloadAssumption(f float64, b bounds.Budgets, maxR int) (offload, original float64, err error) {
	if maxR < 1 {
		return 0, 0, errors.New("ablation: maxR must be >= 1")
	}
	law := pollack.Default()
	for r := 1; r <= maxR; r++ {
		fr := float64(r)
		if err := bounds.SerialFeasible(law, b, fr); err != nil {
			break
		}
		// Offload: Table 1 bounds.
		bd, err := bounds.AsymmetricOffload(law, b, fr)
		if err == nil && bd.N > fr {
			if s, err := amdahl.SpeedupAsymmetricOffload(f, bd.N, fr); err == nil && s > offload {
				offload = s
			}
		}
		// Original asymmetric: the fast core stays on in parallel phases,
		// consuming r^(alpha/2); the BCEs get what is left.
		pw, err := law.Power(fr)
		if err != nil {
			return 0, 0, err
		}
		nPow := (b.Power - pw) + fr
		// The fast core consumes sqrt(r) of bandwidth, BCEs 1 each:
		// sqrt(r) + (n - r) <= B  =>  n <= B - sqrt(r) + r.
		perf, err := law.Perf(fr)
		if err != nil {
			return 0, 0, err
		}
		nBW := b.Bandwidth - perf + fr
		n := b.Area
		if nPow < n {
			n = nPow
		}
		if nBW < n {
			n = nBW
		}
		if n > fr {
			if s, err := amdahl.SpeedupAsymmetric(f, n, fr); err == nil && s > original {
				original = s
			}
		}
	}
	if offload == 0 || original == 0 {
		return 0, 0, errors.New("ablation: no feasible asymmetric design")
	}
	return offload, original, nil
}

// Find returns the result for a design label.
func Find(rs []Result, label string) (Result, error) {
	for _, r := range rs {
		if r.Design == label {
			return r, nil
		}
	}
	return Result{}, fmt.Errorf("ablation: no result for %q", label)
}
