package ablation

import (
	"testing"

	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/paper"
)

// The bandwidth bound is what holds the ASIC back on FFT: removing it
// inflates the ASIC enormously while the power-limited CMPs barely move.
func TestBandwidthBoundDrivesFFTConclusion(t *testing.T) {
	rs, err := BandwidthBound(paper.FFT1024, 0.999, 4) // 11nm
	if err != nil {
		t.Fatal(err)
	}
	asic, err := Find(rs, "(6) ASIC")
	if err != nil {
		t.Fatal(err)
	}
	if asic.Ratio < 3 {
		t.Errorf("unconstrained bandwidth should inflate ASIC FFT by >3x, got %.2fx", asic.Ratio)
	}
	cmp, err := Find(rs, "(1) AsymCMP")
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Ratio > 1.05 {
		t.Errorf("CMPs are power-limited; bandwidth removal should not move them (%.2fx)", cmp.Ratio)
	}
	// The flexible U-cores sit in between: they were pinned to the same
	// ceiling as the ASIC.
	fpga, err := Find(rs, "(2) LX760")
	if err != nil {
		t.Fatal(err)
	}
	if fpga.Ratio <= cmp.Ratio || fpga.Ratio >= asic.Ratio {
		t.Errorf("FPGA ratio %.2fx should sit between CMP %.2fx and ASIC %.2fx",
			fpga.Ratio, cmp.Ratio, asic.Ratio)
	}
}

// On MMM the ASIC is already bandwidth-exempt, so removing the bound
// changes nothing for it.
func TestBandwidthBoundInertOnExemptASIC(t *testing.T) {
	rs, err := BandwidthBound(paper.MMM, 0.999, 4)
	if err != nil {
		t.Fatal(err)
	}
	asic, err := Find(rs, "(6) ASIC")
	if err != nil {
		t.Fatal(err)
	}
	if asic.Ratio > 1.0001 {
		t.Errorf("exempt ASIC should not benefit: %.4fx", asic.Ratio)
	}
}

// The power bound is what holds the CMPs (and GPUs) back.
func TestPowerBoundDrivesCMPLimits(t *testing.T) {
	rs, err := PowerBound(paper.FFT1024, 0.999, 4)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Find(rs, "(1) AsymCMP")
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Ratio < 2 {
		t.Errorf("unlimited power should inflate the CMP strongly, got %.2fx", cmp.Ratio)
	}
	// The ASIC was bandwidth-limited; extra power is useless to it.
	asic, err := Find(rs, "(6) ASIC")
	if err != nil {
		t.Fatal(err)
	}
	if asic.Ratio > 1.1 {
		t.Errorf("bandwidth-limited ASIC should not benefit from power: %.2fx", asic.Ratio)
	}
}

// Sequential-core sizing matters most at low parallelism.
func TestSequentialSizingMattersAtLowF(t *testing.T) {
	low, err := SequentialSizing(paper.FFT1024, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	high, err := SequentialSizing(paper.FFT1024, 0.999, 0)
	if err != nil {
		t.Fatal(err)
	}
	cmpLow, err := Find(low, "(1) AsymCMP")
	if err != nil {
		t.Fatal(err)
	}
	cmpHigh, err := Find(high, "(1) AsymCMP")
	if err != nil {
		t.Fatal(err)
	}
	// Pinning r=1 must hurt (ratio < 1), and hurt more at f=0.5.
	if cmpLow.Ratio >= 1 {
		t.Errorf("r=1 should hurt at f=0.5: ratio %.3f", cmpLow.Ratio)
	}
	if cmpLow.Ratio >= cmpHigh.Ratio {
		t.Errorf("core sizing should matter more at low f: %.3f (f=.5) vs %.3f (f=.999)",
			cmpLow.Ratio, cmpHigh.Ratio)
	}
}

// The offload assumption: under a power budget the offload machine beats
// Hill & Marty's always-on asymmetric machine at high f (the big core's
// power is better spent on BCEs), which is why the paper adopted it.
func TestOffloadAssumption(t *testing.T) {
	b := bounds.Budgets{Area: 19, Power: 8.6, Bandwidth: 57.9}
	off, orig, err := OffloadAssumption(0.99, b, 16)
	if err != nil {
		t.Fatal(err)
	}
	if off <= 0 || orig <= 0 {
		t.Fatal("both machines must be feasible")
	}
	if off < orig*0.95 {
		t.Errorf("offload (%.2f) should be at least competitive with original (%.2f) under power limits",
			off, orig)
	}
	// With abundant power the original machine's extra parallel help wins.
	rich := bounds.Budgets{Area: 19, Power: 1e6, Bandwidth: 1e6}
	off, orig, err = OffloadAssumption(0.99, rich, 16)
	if err != nil {
		t.Fatal(err)
	}
	if orig < off {
		t.Errorf("with unlimited power the original asymmetric machine (%.2f) should not lose to offload (%.2f)",
			orig, off)
	}
	if _, _, err := OffloadAssumption(0.99, b, 0); err == nil {
		t.Error("maxR=0 must fail")
	}
	poor := bounds.Budgets{Area: 19, Power: 0.5, Bandwidth: 57.9}
	if _, _, err := OffloadAssumption(0.99, poor, 16); err == nil {
		t.Error("infeasible budgets must fail")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := BandwidthBound(paper.FFT1024, 0.9, 99); err == nil {
		t.Error("bad node index must fail")
	}
	if _, err := BandwidthBound("bogus", 0.9, 0); err == nil {
		t.Error("bad workload must fail")
	}
	if _, err := Find(nil, "x"); err == nil {
		t.Error("Find on empty must fail")
	}
}
