// Package par is the repository's one concurrency idiom: a bounded
// worker pool over index ranges with deterministic, ordered results.
//
// The model/analysis layer (project, sweep, sensitivity, ablation, sim,
// and the CLI) is embarrassingly parallel — independent (design, node, r)
// optimizations, grid points, and Monte Carlo draws — so everything fans
// out through Map/ForEach here instead of hand-rolling goroutines.
//
// Guarantees:
//
//   - Results are assembled in index order, so output is identical at
//     every worker count (callers supply per-index determinism, e.g.
//     seed+i RNG sub-streams).
//   - The first error cancels the pool promptly via context; among
//     concurrently observed failures the lowest-indexed error wins, which
//     makes the returned error deterministic whenever errors are not
//     racing each other (and always at workers = 1).
//   - workers <= 0 means runtime.GOMAXPROCS(0).
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count request: values <= 0 mean
// runtime.GOMAXPROCS(0), anything else passes through.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Normalize canonicalizes a worker-count request at a configuration
// boundary (CLI flag, server config, HTTP request body): every "auto"
// spelling (zero or any negative value) becomes 0, positive counts pass
// through. It is the single place where -workers and Workers fields are
// sanitized, so a count that survives Normalize is either 0 (auto) or a
// positive pool size — downstream code never sees -3.
func Normalize(n int) int {
	if n <= 0 {
		return 0
	}
	return n
}

// ForEach invokes fn(ctx, i) for every i in [0, n) using at most workers
// goroutines (workers <= 0 means GOMAXPROCS). Indices are claimed from a
// shared atomic counter, so load balances dynamically; at workers = 1 the
// calls happen in ascending index order on the calling goroutine.
//
// The first error cancels the derived context and drains the pool; the
// lowest-indexed observed error is returned. A pre-cancelled ctx returns
// its error without invoking fn.
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstIdx = n
		firstErr error
		wg       sync.WaitGroup
	)
	report := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		cancel() // first failure stops the pool
	}
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || cctx.Err() != nil {
					return
				}
				if err := fn(cctx, i); err != nil {
					report(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Map evaluates fn over [0, n) with ForEach's pool semantics and returns
// the results in index order regardless of completion order. On error the
// partial results are discarded and the (lowest-indexed) error returned.
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	err := ForEach(ctx, n, workers, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
