package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// workerCounts exercises the degenerate, small, and default pool shapes.
func workerCounts() []int {
	return []int{1, 2, 4, runtime.GOMAXPROCS(0), 0}
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	const n = 257
	for _, w := range workerCounts() {
		var visits [n]atomic.Int32
		err := ForEach(context.Background(), n, w, func(_ context.Context, i int) error {
			visits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range visits {
			if c := visits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", w, i, c)
			}
		}
	}
}

func TestMapOrderedAndDeterministic(t *testing.T) {
	const n = 100
	want, err := Map(context.Background(), n, 1, func(_ context.Context, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts() {
		got, err := Map(context.Background(), n, w, func(_ context.Context, i int) (int, error) {
			// Vary completion order so ordering cannot come for free.
			if i%7 == 0 {
				time.Sleep(time.Microsecond)
			}
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	out, err := Map(context.Background(), 0, 4, func(_ context.Context, i int) (int, error) {
		t.Fatal("fn must not run for n=0")
		return 0, nil
	})
	if err != nil || out != nil {
		t.Errorf("n=0: out=%v err=%v", out, err)
	}
	out, err = Map(context.Background(), 1, 8, func(_ context.Context, i int) (int, error) {
		return 42, nil
	})
	if err != nil || len(out) != 1 || out[0] != 42 {
		t.Errorf("n=1: out=%v err=%v", out, err)
	}
}

func TestForEachSerialErrorIsFirstInOrder(t *testing.T) {
	var calls int
	err := ForEach(context.Background(), 10, 1, func(_ context.Context, i int) error {
		calls++
		if i >= 3 {
			return fmt.Errorf("fail at %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "fail at 3" {
		t.Errorf("err = %v, want fail at 3", err)
	}
	if calls != 4 {
		t.Errorf("serial ForEach made %d calls after error, want 4", calls)
	}
}

func TestForEachParallelReturnsLowestObservedError(t *testing.T) {
	// Every index fails; whatever interleaving happens, the reported
	// error must be the lowest-indexed failure that actually ran, and
	// since index 0 always runs, that is index 0.
	for _, w := range workerCounts() {
		err := ForEach(context.Background(), 64, w, func(_ context.Context, i int) error {
			return fmt.Errorf("fail at %d", i)
		})
		if err == nil || err.Error() != "fail at 0" {
			t.Errorf("workers=%d: err = %v, want fail at 0", w, err)
		}
	}
}

func TestMapDiscardsResultsOnError(t *testing.T) {
	boom := errors.New("boom")
	out, err := Map(context.Background(), 8, 4, func(_ context.Context, i int) (int, error) {
		if i == 2 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	if out != nil {
		t.Errorf("out = %v, want nil on error", out)
	}
}

func TestFirstErrorCancelsPromptly(t *testing.T) {
	// One task fails immediately; the rest block until cancellation.
	// The pool must unblock them via the derived context and return well
	// before the 5s safety timeout, without leaking goroutines.
	before := runtime.NumGoroutine()
	start := time.Now()
	err := ForEach(context.Background(), 16, 8, func(ctx context.Context, i int) error {
		if i == 0 {
			return errors.New("early failure")
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(5 * time.Second):
			return errors.New("cancellation never arrived")
		}
	})
	if err == nil || err.Error() != "early failure" {
		t.Fatalf("err = %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancellation took %v", d)
	}
	// Workers exit after wg.Wait, so any surplus goroutines are gone
	// immediately; poll briefly to absorb scheduler noise.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutine leak: %d before, %d after", before, after)
	}
}

func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := ForEach(ctx, 10, 4, func(_ context.Context, i int) error {
		called = true
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if called {
		t.Error("fn ran under a pre-cancelled context")
	}
}

func TestExternalCancellationMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var launched atomic.Int32
	done := make(chan error, 1)
	go func() {
		done <- ForEach(ctx, 1000, 4, func(ctx context.Context, i int) error {
			if launched.Add(1) == 4 {
				cancel()
			}
			select {
			case <-ctx.Done():
			case <-time.After(time.Millisecond):
			}
			return nil
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ForEach did not observe external cancellation")
	}
	if n := launched.Load(); n >= 1000 {
		t.Errorf("cancellation did not stop the sweep (ran %d tasks)", n)
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want int }{
		{-100, 0}, {-1, 0}, {0, 0}, {1, 1}, {4, 4}, {1 << 20, 1 << 20},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	// A normalized count resolves identically to its raw spelling: auto
	// spellings collapse to GOMAXPROCS, positive counts are untouched.
	for _, n := range []int{-7, 0, 3} {
		if Workers(Normalize(n)) != Workers(n) {
			t.Errorf("Workers(Normalize(%d)) != Workers(%d)", n, n)
		}
	}
}
