package pollack

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadAlpha(t *testing.T) {
	for _, a := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := New(a); err == nil {
			t.Errorf("New(%v) should fail", a)
		}
	}
}

func TestDefaultAlpha(t *testing.T) {
	if got := Default().Alpha(); got != 1.75 {
		t.Errorf("Default alpha = %g, want 1.75", got)
	}
}

func TestPerfFollowsPollack(t *testing.T) {
	l := Default()
	cases := []struct{ r, want float64 }{
		{1, 1},
		{2, math.Sqrt2},
		{4, 2},
		{16, 4},
	}
	for _, c := range cases {
		got, err := l.Perf(c.r)
		if err != nil {
			t.Fatalf("Perf(%g): %v", c.r, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Perf(%g) = %g, want %g", c.r, got, c.want)
		}
	}
}

func TestPowerLaw(t *testing.T) {
	l := Default()
	// power(r) = r^(alpha/2); for r = 4, 4^0.875 = 3.3636...
	got, err := l.Power(4)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(4, 0.875)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Power(4) = %g, want %g", got, want)
	}
	// A BCE core consumes exactly 1.
	if p, _ := l.Power(1); p != 1 {
		t.Errorf("Power(1) = %g, want 1", p)
	}
}

func TestPowerOfPerfConsistent(t *testing.T) {
	l := Default()
	// power(r) must equal PowerOfPerf(Perf(r)).
	for _, r := range []float64{1, 2, 3.5, 8, 100} {
		p, _ := l.Perf(r)
		viaPerf, _ := l.PowerOfPerf(p)
		direct, _ := l.Power(r)
		if math.Abs(viaPerf-direct) > 1e-9*direct {
			t.Errorf("r=%g: PowerOfPerf(Perf)=%g != Power=%g", r, viaPerf, direct)
		}
	}
}

func TestMaxRForPowerInvertsPower(t *testing.T) {
	l := Default()
	for _, p := range []float64{1, 2, 10, 100} {
		r, err := l.MaxRForPower(p)
		if err != nil {
			t.Fatal(err)
		}
		back, _ := l.Power(r)
		if math.Abs(back-p) > 1e-9*p {
			t.Errorf("Power(MaxRForPower(%g)) = %g", p, back)
		}
	}
}

func TestEfficiencyDecreasesWithR(t *testing.T) {
	l := Default()
	prev := math.Inf(1)
	for _, r := range []float64{1, 2, 4, 8, 16} {
		e, err := l.Efficiency(r)
		if err != nil {
			t.Fatal(err)
		}
		if e >= prev {
			t.Errorf("Efficiency(%g) = %g, not decreasing (prev %g)", r, e, prev)
		}
		prev = e
	}
	// Efficiency(1) must be exactly 1 (the BCE is the reference).
	if e, _ := l.Efficiency(1); e != 1 {
		t.Errorf("Efficiency(1) = %g, want 1", e)
	}
}

func TestScenarioSixAlphaIsHungrier(t *testing.T) {
	base := Default()
	harsh, err := New(ScenarioSixAlpha)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []float64{2, 4, 9, 16} {
		pb, _ := base.Power(r)
		ph, _ := harsh.Power(r)
		if ph <= pb {
			t.Errorf("alpha=2.25 power at r=%g (%g) should exceed alpha=1.75 (%g)", r, ph, pb)
		}
	}
}

func TestErrorsOnBadInputs(t *testing.T) {
	l := Default()
	if _, err := l.Perf(0); err == nil {
		t.Error("Perf(0) should fail")
	}
	if _, err := l.Power(-3); err == nil {
		t.Error("Power(-3) should fail")
	}
	if _, err := l.PowerOfPerf(0); err == nil {
		t.Error("PowerOfPerf(0) should fail")
	}
	if _, err := l.MaxRForPower(0); err == nil {
		t.Error("MaxRForPower(0) should fail")
	}
	if _, err := l.Efficiency(math.NaN()); err == nil {
		t.Error("Efficiency(NaN) should fail")
	}
}

// Property: Power is super-linear in Perf for alpha > 1 — doubling
// performance more than doubles power.
func TestPowerSuperLinear(t *testing.T) {
	l := Default()
	prop := func(raw float64) bool {
		r := 1 + math.Mod(math.Abs(raw), 100)
		p1, err1 := l.Perf(r)
		if err1 != nil {
			return false
		}
		w1, _ := l.PowerOfPerf(p1)
		w2, _ := l.PowerOfPerf(2 * p1)
		return w2 > 2*w1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: MaxRForPower is monotone in the budget.
func TestMaxRMonotone(t *testing.T) {
	l := Default()
	prop := func(raw float64) bool {
		p := 0.5 + math.Mod(math.Abs(raw), 1000)
		r1, err1 := l.MaxRForPower(p)
		r2, err2 := l.MaxRForPower(p * 1.5)
		return err1 == nil && err2 == nil && r2 > r1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
