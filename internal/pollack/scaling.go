package pollack

import (
	"fmt"
	"math"
)

// DefaultTheta is Pollack's empirical performance exponent: sequential
// performance grows with the square root of the area invested.
const DefaultTheta = 0.5

// Scaling generalizes the sequential-core law to perf_seq(r) = r^theta.
// Pollack's rule is the empirical special case theta = 1/2; Ginosar's
// sqrt(m) complexity argument (a core of m resources can usefully
// exploit about sqrt(m) of them) derives the same exponent analytically,
// which makes theta worth exposing as a first-class knob: the sqrtm
// model backend evaluates the whole Chung framework under alternative
// exponents. The power side generalizes with it: power_seq = perf^alpha
// = r^(alpha*theta).
//
// The zero value is not valid; use NewScaling. At theta = 1/2 every
// method reproduces Law's expressions bit for bit (Perf takes the same
// math.Sqrt path, and alpha*0.5 is the same float64 as alpha/2), so the
// generalized law degrades to the paper's exactly.
type Scaling struct {
	alpha float64
	theta float64
}

// NewScaling returns the generalized law. alpha must be positive and
// finite (the paper uses 1.75); theta must be in (0, 1] — theta > 1
// would mean super-linear return on core area, which no published
// scaling argument supports.
func NewScaling(alpha, theta float64) (Scaling, error) {
	if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return Scaling{}, fmt.Errorf("pollack: alpha must be a positive finite number, got %v", alpha)
	}
	if !(theta > 0 && theta <= 1) {
		return Scaling{}, fmt.Errorf("pollack: theta must be in (0, 1], got %v", theta)
	}
	return Scaling{alpha: alpha, theta: theta}, nil
}

// DefaultScaling returns the paper's baseline as a generalized law:
// alpha = 1.75, theta = 1/2.
func DefaultScaling() Scaling {
	s, err := NewScaling(DefaultAlpha, DefaultTheta)
	if err != nil {
		panic(err) // unreachable: the defaults are valid
	}
	return s
}

// Alpha returns the performance-to-power exponent.
func (s Scaling) Alpha() float64 { return s.alpha }

// Theta returns the area-to-performance exponent.
func (s Scaling) Theta() float64 { return s.theta }

// Perf returns the sequential performance of a core built from r BCE
// units: perf_seq(r) = r^theta. At theta = 1/2 it computes math.Sqrt(r),
// the exact expression Law.Perf uses.
func (s Scaling) Perf(r float64) (float64, error) {
	if r <= 0 || math.IsNaN(r) {
		return 0, ErrBadResource
	}
	if s.theta == DefaultTheta {
		return math.Sqrt(r), nil
	}
	return math.Pow(r, s.theta), nil
}

// Power returns the active power of a core built from r BCE units:
// power_seq(r) = perf^alpha = r^(alpha*theta). At theta = 1/2 the
// exponent is the same float64 as Law.Power's alpha/2.
func (s Scaling) Power(r float64) (float64, error) {
	if r <= 0 || math.IsNaN(r) {
		return 0, ErrBadResource
	}
	return math.Pow(r, s.alpha*s.theta), nil
}

// PowExp returns the power-law exponent alpha*theta, for callers that
// assemble bound expressions (n <= P / r^(alpha*theta - 1)) directly.
func (s Scaling) PowExp() float64 { return s.alpha * s.theta }
