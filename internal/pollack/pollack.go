// Package pollack implements the sequential-core scaling laws used by the
// heterosim model: Pollack's rule relating single-thread performance to the
// silicon area invested in a core, and the super-linear power law relating
// sequential performance to power.
//
// Hill and Marty ("Amdahl's Law in the Multicore Era") adopt Pollack's
// observation that microarchitectural performance grows roughly with the
// square root of the transistors spent: perf_seq(r) = sqrt(r), where r is
// the core size in Base-Core-Equivalent (BCE) units. Chung et al. (MICRO
// 2010) add the power side: power_seq = perf^alpha with alpha estimated at
// 1.75 from Grochowski's "Energy per Instruction Trends in Intel
// Microprocessors"; Scenario 6 of the paper raises alpha to 2.25.
package pollack

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
)

// DefaultAlpha is the performance-to-power exponent estimated in
// Grochowski et al. and used throughout the paper's baseline projections.
const DefaultAlpha = 1.75

// ScenarioSixAlpha is the pessimistic serial-power exponent explored in
// Section 6.2, Scenario 6.
const ScenarioSixAlpha = 2.25

// ErrBadResource indicates a non-positive core size r.
var ErrBadResource = errors.New("pollack: core size r must be positive")

// powTabSize covers the integer core sizes the serial bounds probe
// repeatedly (the paper sweeps r <= 16; 64 leaves slack for larger
// evaluator settings).
const powTabSize = 64

// capEntry memoizes one MaxRForPower evaluation. The stored r is the
// exact Pow result for the stored p, so a memo hit returns the same
// bits the direct computation would.
type capEntry struct{ p, r float64 }

// Law bundles the sequential performance and power laws for one choice of
// the power exponent alpha. The zero value is not valid; use New.
type Law struct {
	alpha float64
	// powTab[i] = Pow(i+1, alpha/2), precomputed at New: Power is on the
	// per-candidate path of the analytic optimizer, and a general-exponent
	// Pow per feasibility probe dominated the optimize cost. Entries are
	// the exact Pow values, so table hits are bit-identical to the direct
	// computation.
	powTab *[powTabSize]float64
	// capMemo holds the last MaxRForPower result. Grid sweeps solve the
	// serial cap once per cell against a power budget that rarely changes
	// between cells, and the general-exponent Pow there was a measurable
	// slice of a cold sweep request.
	capMemo *atomic.Pointer[capEntry]
}

// New returns a Law with the given performance-to-power exponent. alpha
// must be positive; the paper uses 1.75 (and 2.25 in Scenario 6).
func New(alpha float64) (Law, error) {
	if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return Law{}, fmt.Errorf("pollack: alpha must be a positive finite number, got %v", alpha)
	}
	l := Law{
		alpha:   alpha,
		powTab:  new([powTabSize]float64),
		capMemo: new(atomic.Pointer[capEntry]),
	}
	for i := range l.powTab {
		l.powTab[i] = math.Pow(float64(i+1), alpha/2)
	}
	return l, nil
}

// Default returns the paper's baseline law (alpha = 1.75).
func Default() Law {
	l, err := New(DefaultAlpha)
	if err != nil {
		panic(err) // unreachable: DefaultAlpha is valid
	}
	return l
}

// Alpha returns the performance-to-power exponent.
func (l Law) Alpha() float64 { return l.alpha }

// Perf returns the sequential performance of a core built from r BCE units
// of area, relative to a single BCE core: perf_seq(r) = sqrt(r).
func (l Law) Perf(r float64) (float64, error) {
	if r <= 0 || math.IsNaN(r) {
		return 0, ErrBadResource
	}
	return math.Sqrt(r), nil
}

// Power returns the active power of a core built from r BCE units,
// relative to the active power of a single BCE core:
// power_seq(r) = perf^alpha = r^(alpha/2).
func (l Law) Power(r float64) (float64, error) {
	if r <= 0 || math.IsNaN(r) {
		return 0, ErrBadResource
	}
	if l.powTab != nil {
		if i := int(r); float64(i) == r && i >= 1 && i <= powTabSize {
			return l.powTab[i-1], nil
		}
	}
	return math.Pow(r, l.alpha/2), nil
}

// PowerOfPerf returns the power consumed to reach sequential performance
// perf (relative units): power = perf^alpha.
func (l Law) PowerOfPerf(perf float64) (float64, error) {
	if perf <= 0 || math.IsNaN(perf) {
		return 0, errors.New("pollack: performance must be positive")
	}
	return math.Pow(perf, l.alpha), nil
}

// MaxRForPower returns the largest core size r whose active power fits in
// budget p (the serial power bound of Table 1: r^(alpha/2) <= P).
func (l Law) MaxRForPower(p float64) (float64, error) {
	if p <= 0 || math.IsNaN(p) {
		return 0, errors.New("pollack: power budget must be positive")
	}
	if l.capMemo != nil {
		if e := l.capMemo.Load(); e != nil && e.p == p {
			return e.r, nil
		}
	}
	r := math.Pow(p, 2/l.alpha)
	if l.capMemo != nil {
		l.capMemo.Store(&capEntry{p: p, r: r})
	}
	return r, nil
}

// Efficiency returns sequential performance per unit power for a core of
// size r: perf/power = r^((1-alpha)/2). For alpha > 1 this decreases with
// r — bigger sequential cores are less energy-efficient, the crux of the
// dark-silicon argument.
func (l Law) Efficiency(r float64) (float64, error) {
	if r <= 0 || math.IsNaN(r) {
		return 0, ErrBadResource
	}
	return math.Pow(r, (1-l.alpha)/2), nil
}
