package workload

import (
	"math"
	"testing"

	"github.com/calcm/heterosim/internal/paper"
)

func TestFFTCounts(t *testing.T) {
	c, err := FFTCounts(1024)
	if err != nil {
		t.Fatal(err)
	}
	if c.FLOPs != 5*1024*10 {
		t.Errorf("FLOPs = %g, want 51200", c.FLOPs)
	}
	if c.Bytes != 16*1024 {
		t.Errorf("Bytes = %g, want 16384", c.Bytes)
	}
	// Arithmetic intensity matches footnote 2: 0.3125 * log2 N.
	ai, err := c.ArithmeticIntensity()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ai-0.3125*10) > 1e-12 {
		t.Errorf("AI = %g, want 3.125", ai)
	}
	if _, err := FFTCounts(1000); err == nil {
		t.Error("non-power-of-two must fail")
	}
}

func TestFFT1024BytesPerFlopMatchesPaper(t *testing.T) {
	// The paper uses 0.32 bytes/flop for FFT-1024 in Section 6.
	bpf, err := BytesPerUnitWork(paper.FFT1024)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bpf-paper.FFT1024BytesPerFlop) > 0.001 {
		t.Errorf("FFT-1024 bytes/flop = %g, want %g", bpf, paper.FFT1024BytesPerFlop)
	}
}

func TestMMMCounts(t *testing.T) {
	c, err := MMMCounts(1024, 128)
	if err != nil {
		t.Fatal(err)
	}
	if c.FLOPs != 2*1024*1024*1024 {
		t.Errorf("FLOPs = %g", c.FLOPs)
	}
	ai, _ := c.ArithmeticIntensity()
	if math.Abs(ai-32) > 1e-9 { // N/4 at N=128
		t.Errorf("MMM AI = %g, want 32", ai)
	}
	if _, err := MMMCounts(0, 16); err == nil {
		t.Error("zero size must fail")
	}
	if _, err := MMMCounts(64, 0); err == nil {
		t.Error("zero block must fail")
	}
	if _, err := MMMCounts(64, 128); err == nil {
		t.Error("block > n must fail")
	}
}

func TestMMMBytesPerFlopMatchesPaper(t *testing.T) {
	bpf, err := BytesPerUnitWork(paper.MMM)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bpf-paper.MMMBytesPerFlop) > 1e-6 {
		t.Errorf("MMM bytes/flop = %g, want %g", bpf, paper.MMMBytesPerFlop)
	}
}

func TestBSCounts(t *testing.T) {
	c, err := BSCounts(1000)
	if err != nil {
		t.Fatal(err)
	}
	if c.Items != 1000 {
		t.Errorf("Items = %g", c.Items)
	}
	if c.Bytes != 10000 {
		t.Errorf("Bytes = %g, want 10000 (10 B/option)", c.Bytes)
	}
	if _, err := BSCounts(0); err == nil {
		t.Error("zero options must fail")
	}
	bpo, err := BytesPerUnitWork(paper.BS)
	if err != nil || bpo != paper.BSBytesPerOption {
		t.Errorf("bytes/option = %g, %v; want 10", bpo, err)
	}
}

func TestCountsAdd(t *testing.T) {
	a := Counts{FLOPs: 1, Bytes: 2, Items: 3}
	b := Counts{FLOPs: 10, Bytes: 20, Items: 30}
	got := a.Add(b)
	if got.FLOPs != 11 || got.Bytes != 22 || got.Items != 33 {
		t.Errorf("Add = %+v", got)
	}
}

func TestArithmeticIntensityErrors(t *testing.T) {
	if _, err := (Counts{FLOPs: 1}).ArithmeticIntensity(); err == nil {
		t.Error("zero bytes must error")
	}
}

func TestCheckPow2(t *testing.T) {
	for _, n := range []int{2, 4, 1024} {
		if err := CheckPow2(n); err != nil {
			t.Errorf("CheckPow2(%d): %v", n, err)
		}
	}
	for _, n := range []int{0, 1, 3, 100} {
		if err := CheckPow2(n); err == nil {
			t.Errorf("CheckPow2(%d) should fail", n)
		}
	}
}

func TestLog2Int(t *testing.T) {
	l, err := Log2Int(16384)
	if err != nil || l != 14 {
		t.Errorf("Log2Int(16384) = %d, %v; want 14", l, err)
	}
	if _, err := Log2Int(7); err == nil {
		t.Error("Log2Int(7) should fail")
	}
}

func TestRegistryCoversTable5Workloads(t *testing.T) {
	reg := Registry()
	for _, id := range paper.AllWorkloads {
		info, ok := reg[id]
		if !ok {
			t.Errorf("registry missing %s", id)
			continue
		}
		if info.ID != id || info.Name == "" || info.ThroughputUnit == "" {
			t.Errorf("registry entry for %s incomplete: %+v", id, info)
		}
	}
}

func TestForID(t *testing.T) {
	for _, id := range paper.AllWorkloads {
		c, err := ForID(id)
		if err != nil {
			t.Errorf("ForID(%s): %v", id, err)
			continue
		}
		if c.FLOPs <= 0 || c.Bytes <= 0 {
			t.Errorf("ForID(%s) = %+v, want positive work", id, c)
		}
	}
	if _, err := ForID("nope"); err == nil {
		t.Error("unknown workload must fail")
	}
}

func TestPaperArithmeticIntensityHelpers(t *testing.T) {
	if got := paper.FFTArithmeticIntensity(1024); math.Abs(got-3.125) > 1e-12 {
		t.Errorf("paper FFT AI(1024) = %g, want 3.125", got)
	}
	if got := paper.MMMArithmeticIntensity(128); got != 32 {
		t.Errorf("paper MMM AI(128) = %g, want 32", got)
	}
}
