package fft

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"sync"
)

// Plan precomputes everything a fixed-size transform needs — twiddle
// table, bit-reversal permutation — so repeated transforms of the same
// length do no allocation and no trigonometry, the way tuned FFT
// libraries (FFTW, Spiral's generated code) amortize setup. A Plan is
// safe for concurrent use by multiple goroutines: Execute works in the
// caller's buffer and the plan itself is immutable after NewPlan.
type Plan struct {
	n       int
	twiddle []complex128 // exp(-2πik/n), k in [0, n/2)
	rev     []int        // bit-reversal permutation
}

// NewPlan prepares a transform of length n (a power of two >= 2).
func NewPlan(n int) (*Plan, error) {
	if !IsPow2(n) {
		return nil, ErrNotPow2
	}
	p := &Plan{
		n:       n,
		twiddle: make([]complex128, n/2),
		rev:     make([]int, n),
	}
	for k := range p.twiddle {
		angle := -2 * math.Pi * float64(k) / float64(n)
		p.twiddle[k] = cmplx.Exp(complex(0, angle))
	}
	// Bit-reversal permutation table.
	bits := 0
	for v := n; v > 1; v >>= 1 {
		bits++
	}
	for i := range p.rev {
		r := 0
		for b := 0; b < bits; b++ {
			r = (r << 1) | ((i >> uint(b)) & 1)
		}
		p.rev[i] = r
	}
	return p, nil
}

// planCache memoizes one Plan per transform length. Plans are immutable
// after NewPlan and safe for concurrent use, so sharing one per size is
// sound; repeated measure/sim sweeps at the same sizes reuse the twiddle
// and bit-reversal tables instead of re-deriving them on every run.
var planCache sync.Map // int -> *Plan

// PlanFor returns the shared cached plan for length n (a power of two
// >= 2), building and memoizing it on first use. Callers that need a
// private plan (there is no semantic reason to — plans are stateless
// between Execute calls) can still use NewPlan.
func PlanFor(n int) (*Plan, error) {
	if v, ok := planCache.Load(n); ok {
		return v.(*Plan), nil
	}
	p, err := NewPlan(n)
	if err != nil {
		return nil, err
	}
	actual, _ := planCache.LoadOrStore(n, p)
	return actual.(*Plan), nil
}

// N returns the transform length.
func (p *Plan) N() int { return p.n }

// Execute computes the in-place forward FFT of x, which must have the
// plan's length.
func (p *Plan) Execute(x []complex128) error {
	if len(x) != p.n {
		return fmt.Errorf("fft: plan is for n=%d, input has %d", p.n, len(x))
	}
	// Permute via the precomputed table.
	for i, r := range p.rev {
		if i < r {
			x[i], x[r] = x[r], x[i]
		}
	}
	// Butterflies with the precomputed twiddles.
	n := p.n
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := p.twiddle[k*step]
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
	return nil
}

// ExecuteInverse computes the in-place inverse FFT with 1/N scaling.
func (p *Plan) ExecuteInverse(x []complex128) error {
	if len(x) != p.n {
		return fmt.Errorf("fft: plan is for n=%d, input has %d", p.n, len(x))
	}
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	if err := p.Execute(x); err != nil {
		return err
	}
	inv := complex(1/float64(p.n), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * inv
	}
	return nil
}

// ExecuteBatch transforms every row of a batch laid out contiguously
// (len(batch) must be a multiple of the plan length) — the paper's
// throughput-driven shape: many independent transforms back to back.
func (p *Plan) ExecuteBatch(batch []complex128) error {
	if len(batch) == 0 || len(batch)%p.n != 0 {
		return errors.New("fft: batch length must be a positive multiple of the plan length")
	}
	for off := 0; off < len(batch); off += p.n {
		if err := p.Execute(batch[off : off+p.n]); err != nil {
			return err
		}
	}
	return nil
}
