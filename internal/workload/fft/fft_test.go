package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSignal(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{2, 4, 8, 1024, 1 << 20} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, 1, 3, 6, 12, 1000} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestForwardMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 4, 8, 16, 64, 256} {
		x := randomSignal(rng, n)
		want := DFT(x)
		got, err := ForwardCopy(x)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		diff, err := MaxAbsDiff(got, want)
		if err != nil {
			t.Fatal(err)
		}
		if diff > 1e-9*float64(n) {
			t.Errorf("n=%d: max diff vs DFT = %g", n, diff)
		}
	}
}

func TestRecursiveMatchesIterative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 8, 32, 128, 1024} {
		x := randomSignal(rng, n)
		rec, err := ForwardRecursive(x)
		if err != nil {
			t.Fatal(err)
		}
		it, err := ForwardCopy(x)
		if err != nil {
			t.Fatal(err)
		}
		diff, _ := MaxAbsDiff(rec, it)
		if diff > 1e-9*float64(n) {
			t.Errorf("n=%d: recursive vs iterative diff = %g", n, diff)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{2, 16, 1024, 4096} {
		orig := randomSignal(rng, n)
		x := append([]complex128(nil), orig...)
		if err := Forward(x); err != nil {
			t.Fatal(err)
		}
		if err := Inverse(x); err != nil {
			t.Fatal(err)
		}
		diff, _ := MaxAbsDiff(x, orig)
		if diff > 1e-9*float64(n) {
			t.Errorf("n=%d: round-trip diff = %g", n, diff)
		}
	}
}

func TestKnownTransforms(t *testing.T) {
	// Impulse -> flat spectrum.
	x := []complex128{1, 0, 0, 0}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	for k, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("impulse FFT[%d] = %v, want 1", k, v)
		}
	}
	// Constant -> impulse at DC.
	x = []complex128{1, 1, 1, 1}
	Forward(x)
	if cmplx.Abs(x[0]-4) > 1e-12 {
		t.Errorf("DC bin = %v, want 4", x[0])
	}
	for k := 1; k < 4; k++ {
		if cmplx.Abs(x[k]) > 1e-12 {
			t.Errorf("bin %d = %v, want 0", k, x[k])
		}
	}
	// Single complex exponential lands in exactly one bin.
	n := 16
	x = make([]complex128, n)
	for i := range x {
		angle := 2 * math.Pi * 3 * float64(i) / float64(n)
		x[i] = cmplx.Exp(complex(0, angle))
	}
	Forward(x)
	for k := 0; k < n; k++ {
		want := 0.0
		if k == 3 {
			want = float64(n)
		}
		if cmplx.Abs(x[k]-complex(want, 0)) > 1e-9 {
			t.Errorf("exp tone bin %d = %v, want %g", k, x[k], want)
		}
	}
}

func TestLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 128
	a := randomSignal(rng, n)
	b := randomSignal(rng, n)
	alpha := complex(2.5, -1.25)
	// FFT(alpha*a + b) == alpha*FFT(a) + FFT(b).
	comb := make([]complex128, n)
	for i := range comb {
		comb[i] = alpha*a[i] + b[i]
	}
	fc, _ := ForwardCopy(comb)
	fa, _ := ForwardCopy(a)
	fb, _ := ForwardCopy(b)
	for i := range fc {
		want := alpha*fa[i] + fb[i]
		if cmplx.Abs(fc[i]-want) > 1e-9*float64(n) {
			t.Fatalf("linearity violated at bin %d", i)
		}
	}
}

func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{8, 64, 1024} {
		x := randomSignal(rng, n)
		timeE := Energy(x)
		f, _ := ForwardCopy(x)
		freqE := Energy(f) / float64(n)
		if math.Abs(timeE-freqE) > 1e-9*timeE*float64(n) {
			t.Errorf("n=%d: Parseval violated: %g vs %g", n, timeE, freqE)
		}
	}
}

func TestConvolutionTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 64
	a := randomSignal(rng, n)
	b := randomSignal(rng, n)
	got, err := Convolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Direct circular convolution.
	want := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			sum += a[j] * b[(k-j+n)%n]
		}
		want[k] = sum
	}
	diff, _ := MaxAbsDiff(got, want)
	if diff > 1e-8*float64(n) {
		t.Errorf("convolution diff = %g", diff)
	}
	if _, err := Convolve(a, a[:n/2]); err == nil {
		t.Error("length mismatch must error")
	}
}

func TestBitReverse(t *testing.T) {
	x := []complex128{0, 1, 2, 3, 4, 5, 6, 7}
	if err := BitReverse(x); err != nil {
		t.Fatal(err)
	}
	want := []complex128{0, 4, 2, 6, 1, 5, 3, 7}
	for i := range want {
		if x[i] != want[i] {
			t.Errorf("BitReverse[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	// Involution: applying twice restores order.
	BitReverse(x)
	for i := range x {
		if x[i] != complex(float64(i), 0) {
			t.Errorf("double reversal not identity at %d", i)
		}
	}
	if err := BitReverse(make([]complex128, 3)); err != ErrNotPow2 {
		t.Errorf("err = %v, want ErrNotPow2", err)
	}
}

func TestErrNotPow2(t *testing.T) {
	bad := make([]complex128, 12)
	if err := Forward(bad); err != ErrNotPow2 {
		t.Errorf("Forward: %v", err)
	}
	if err := Inverse(bad); err != ErrNotPow2 {
		t.Errorf("Inverse: %v", err)
	}
	if _, err := ForwardCopy(bad); err != ErrNotPow2 {
		t.Errorf("ForwardCopy: %v", err)
	}
	if _, err := ForwardRecursive(bad); err != ErrNotPow2 {
		t.Errorf("ForwardRecursive: %v", err)
	}
	if _, err := PseudoFLOPs(12); err != ErrNotPow2 {
		t.Errorf("PseudoFLOPs: %v", err)
	}
}

func TestPseudoFLOPs(t *testing.T) {
	got, err := PseudoFLOPs(1024)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5*1024*10 {
		t.Errorf("PseudoFLOPs(1024) = %g, want 51200", got)
	}
}

func TestForwardCopyDoesNotMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := randomSignal(rng, 32)
	snapshot := append([]complex128(nil), x...)
	if _, err := ForwardCopy(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if x[i] != snapshot[i] {
			t.Fatal("ForwardCopy mutated its input")
		}
	}
}

// Property: time shift multiplies the spectrum by a phase ramp.
func TestPropTimeShiftPhase(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 64
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := randomSignal(r, n)
		shifted := make([]complex128, n)
		for i := range shifted {
			shifted[i] = x[(i+1)%n] // shift left by one
		}
		fx, _ := ForwardCopy(x)
		fs, _ := ForwardCopy(shifted)
		for k := 0; k < n; k++ {
			phase := cmplx.Exp(complex(0, 2*math.Pi*float64(k)/float64(n)))
			if cmplx.Abs(fs[k]-fx[k]*phase) > 1e-8*float64(n) {
				return false
			}
		}
		_ = rng
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: conjugate symmetry for real inputs.
func TestPropRealInputConjugateSymmetry(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 128
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), 0)
		}
		f, err := ForwardCopy(x)
		if err != nil {
			return false
		}
		for k := 1; k < n; k++ {
			if cmplx.Abs(f[k]-cmplx.Conj(f[n-k])) > 1e-8*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkForward1024(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := randomSignal(rng, 1024)
	buf := make([]complex128, len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		if err := Forward(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForward16384(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	x := randomSignal(rng, 16384)
	buf := make([]complex128, len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		if err := Forward(buf); err != nil {
			b.Fatal(err)
		}
	}
}
