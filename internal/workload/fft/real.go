package fft

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// ErrBadSpectrum is returned when an inverse-real transform receives a
// spectrum that cannot have come from real input.
var ErrBadSpectrum = errors.New("fft: spectrum is not conjugate-symmetric")

// ForwardReal computes the DFT of a real signal using the packed
// half-complex algorithm: the n real samples are treated as n/2 complex
// samples, transformed with a half-size FFT, and unpacked. It returns the
// n/2+1 non-redundant bins X[0..n/2] (the remaining bins are the
// conjugate mirror). n must be a power of two >= 4.
//
// This is the transform shape hardware FFT pipelines (and Spiral's
// generated cores) implement for real inputs at roughly half the cost of
// a complex FFT.
func ForwardReal(x []float64) ([]complex128, error) {
	n := len(x)
	if n < 4 || !IsPow2(n) {
		return nil, ErrNotPow2
	}
	half := n / 2
	// Pack adjacent real samples into complex values.
	z := make([]complex128, half)
	for i := 0; i < half; i++ {
		z[i] = complex(x[2*i], x[2*i+1])
	}
	if err := Forward(z); err != nil {
		return nil, err
	}
	// Unpack: split Z into the transforms of the even and odd samples,
	// then combine with twiddles.
	out := make([]complex128, half+1)
	tw := twiddles(n)
	for k := 1; k < half; k++ {
		zk := z[k]
		zc := cmplx.Conj(z[half-k])
		even := (zk + zc) / 2
		odd := (zk - zc) / complex(0, 2)
		out[k] = even + tw[k]*odd
	}
	// DC and Nyquist bins are real.
	re0, im0 := real(z[0]), imag(z[0])
	out[0] = complex(re0+im0, 0)
	out[half] = complex(re0-im0, 0)
	return out, nil
}

// InverseReal reconstructs the real signal of length n from its n/2+1
// non-redundant spectrum bins (the inverse of ForwardReal). The DC and
// Nyquist bins must be (numerically) real.
func InverseReal(spec []complex128, n int) ([]float64, error) {
	if n < 4 || !IsPow2(n) {
		return nil, ErrNotPow2
	}
	half := n / 2
	if len(spec) != half+1 {
		return nil, fmt.Errorf("fft: spectrum length %d, want %d", len(spec), half+1)
	}
	tol := 1e-9 * (1 + cmplx.Abs(spec[0]) + cmplx.Abs(spec[half]))
	if math.Abs(imag(spec[0])) > tol || math.Abs(imag(spec[half])) > tol {
		return nil, ErrBadSpectrum
	}
	// Repack into the half-size complex spectrum.
	z := make([]complex128, half)
	tw := twiddles(n)
	for k := 1; k < half; k++ {
		xk := spec[k]
		xc := cmplx.Conj(spec[half-k])
		even := (xk + xc) / 2
		odd := (xk - xc) / 2 * cmplx.Conj(tw[k]) * complex(0, 1)
		// Note: forward did out[k] = even + tw[k]*odd with odd multiplied
		// by -i/2 packing; invert the algebra.
		z[k] = even + odd
	}
	z[0] = complex((real(spec[0])+real(spec[half]))/2, (real(spec[0])-real(spec[half]))/2)
	if err := Inverse(z); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := 0; i < half; i++ {
		out[2*i] = real(z[i])
		out[2*i+1] = imag(z[i])
	}
	return out, nil
}

// FullSpectrum expands the n/2+1 non-redundant real-input bins into the
// full length-n conjugate-symmetric spectrum.
func FullSpectrum(spec []complex128, n int) ([]complex128, error) {
	if n < 4 || !IsPow2(n) {
		return nil, ErrNotPow2
	}
	half := n / 2
	if len(spec) != half+1 {
		return nil, fmt.Errorf("fft: spectrum length %d, want %d", len(spec), half+1)
	}
	out := make([]complex128, n)
	copy(out, spec)
	for k := half + 1; k < n; k++ {
		out[k] = cmplx.Conj(spec[n-k])
	}
	return out, nil
}

// Forward2D computes the in-place 2D FFT of a rows x cols matrix stored
// row-major: an FFT over every row followed by an FFT over every column.
// Both dimensions must be powers of two.
func Forward2D(x []complex128, rows, cols int) error {
	return transform2D(x, rows, cols, Forward)
}

// Inverse2D computes the in-place 2D inverse FFT with full 1/(rows*cols)
// normalization.
func Inverse2D(x []complex128, rows, cols int) error {
	return transform2D(x, rows, cols, Inverse)
}

func transform2D(x []complex128, rows, cols int, t func([]complex128) error) error {
	if rows < 2 || cols < 2 || !IsPow2(rows) || !IsPow2(cols) {
		return ErrNotPow2
	}
	if len(x) != rows*cols {
		return fmt.Errorf("fft: matrix is %d elements, want %d", len(x), rows*cols)
	}
	// Rows in place.
	for r := 0; r < rows; r++ {
		if err := t(x[r*cols : (r+1)*cols]); err != nil {
			return err
		}
	}
	// Columns via a scratch vector.
	col := make([]complex128, rows)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			col[r] = x[r*cols+c]
		}
		if err := t(col); err != nil {
			return err
		}
		for r := 0; r < rows; r++ {
			x[r*cols+c] = col[r]
		}
	}
	return nil
}

// DFT2D is the quadratic-time 2D reference transform.
func DFT2D(x []complex128, rows, cols int) ([]complex128, error) {
	if len(x) != rows*cols {
		return nil, fmt.Errorf("fft: matrix is %d elements, want %d", len(x), rows*cols)
	}
	out := make([]complex128, rows*cols)
	for kr := 0; kr < rows; kr++ {
		for kc := 0; kc < cols; kc++ {
			var sum complex128
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					angle := -2 * math.Pi * (float64(kr*r)/float64(rows) + float64(kc*c)/float64(cols))
					sum += x[r*cols+c] * cmplx.Exp(complex(0, angle))
				}
			}
			out[kr*cols+kc] = sum
		}
	}
	return out, nil
}
