// Package fft implements the fast Fourier transform kernels studied by
// the paper: an iterative radix-2 decimation-in-time FFT with cached
// twiddle factors, a recursive variant, a naive O(N^2) DFT reference, and
// the inverse transform. The paper's Spiral-generated FFTs are replaced by
// these hand-written implementations; the pseudo-FLOP accounting
// (5 N log2 N) and streaming byte traffic (16 N) are identical, which is
// all the model consumes.
//
// Transforms operate on complex128 slices in natural order. All forward
// transforms compute the unnormalized DFT
//
//	X[k] = sum_{t=0}^{N-1} x[t] · exp(-2πi·tk/N)
//
// and Inverse applies the 1/N normalization so Inverse(Forward(x)) == x.
package fft

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"sync"
)

// ErrNotPow2 is returned when a transform length is not a power of two.
var ErrNotPow2 = errors.New("fft: length must be a power of two >= 2")

// twiddleCache memoizes per-length twiddle factor tables. Tables are
// immutable once built, so concurrent readers are safe.
var twiddleCache sync.Map // int -> []complex128

// twiddles returns the first n/2 twiddle factors exp(-2πi·k/n).
func twiddles(n int) []complex128 {
	if v, ok := twiddleCache.Load(n); ok {
		return v.([]complex128)
	}
	tw := make([]complex128, n/2)
	for k := range tw {
		angle := -2 * math.Pi * float64(k) / float64(n)
		tw[k] = cmplx.Exp(complex(0, angle))
	}
	actual, _ := twiddleCache.LoadOrStore(n, tw)
	return actual.([]complex128)
}

// IsPow2 reports whether n is a power of two >= 2.
func IsPow2(n int) bool { return n >= 2 && n&(n-1) == 0 }

// BitReverse permutes x in place into bit-reversed order. The length must
// be a power of two.
func BitReverse(x []complex128) error {
	n := len(x)
	if !IsPow2(n) {
		return ErrNotPow2
	}
	// Classic in-place bit reversal.
	j := 0
	for i := 0; i < n-1; i++ {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
		m := n >> 1
		for m >= 1 && j&m != 0 {
			j ^= m
			m >>= 1
		}
		j |= m
	}
	return nil
}

// Forward computes the in-place iterative radix-2 decimation-in-time FFT.
func Forward(x []complex128) error {
	n := len(x)
	if !IsPow2(n) {
		return ErrNotPow2
	}
	if err := BitReverse(x); err != nil {
		return err
	}
	tw := twiddles(n)
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := tw[k*step]
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
	return nil
}

// Inverse computes the in-place inverse FFT with 1/N normalization.
func Inverse(x []complex128) error {
	n := len(x)
	if !IsPow2(n) {
		return ErrNotPow2
	}
	// IFFT(x) = conj(FFT(conj(x))) / N.
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	if err := Forward(x); err != nil {
		return err
	}
	inv := complex(1/float64(n), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * inv
	}
	return nil
}

// ForwardCopy returns the FFT of x without modifying the input.
func ForwardCopy(x []complex128) ([]complex128, error) {
	out := make([]complex128, len(x))
	copy(out, x)
	if err := Forward(out); err != nil {
		return nil, err
	}
	return out, nil
}

// ForwardRecursive computes the FFT using the textbook recursive
// Cooley-Tukey decomposition. It allocates O(N log N) scratch and exists
// as an independent implementation to cross-check Forward.
func ForwardRecursive(x []complex128) ([]complex128, error) {
	n := len(x)
	if !IsPow2(n) && n != 1 {
		return nil, ErrNotPow2
	}
	out := make([]complex128, n)
	copy(out, x)
	recurse(out)
	return out, nil
}

func recurse(x []complex128) {
	n := len(x)
	if n == 1 {
		return
	}
	half := n / 2
	even := make([]complex128, half)
	odd := make([]complex128, half)
	for i := 0; i < half; i++ {
		even[i] = x[2*i]
		odd[i] = x[2*i+1]
	}
	recurse(even)
	recurse(odd)
	tw := twiddles(n)
	for k := 0; k < half; k++ {
		t := tw[k] * odd[k]
		x[k] = even[k] + t
		x[k+half] = even[k] - t
	}
}

// DFT computes the naive O(N^2) discrete Fourier transform, used as the
// correctness oracle for the fast implementations. Any length >= 1 works.
func DFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

// Convolve returns the circular convolution of a and b via the FFT,
// demonstrating (and testing) the convolution theorem. Lengths must match
// and be a power of two.
func Convolve(a, b []complex128) ([]complex128, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("fft: convolution length mismatch %d vs %d", len(a), len(b))
	}
	fa, err := ForwardCopy(a)
	if err != nil {
		return nil, err
	}
	fb, err := ForwardCopy(b)
	if err != nil {
		return nil, err
	}
	for i := range fa {
		fa[i] *= fb[i]
	}
	if err := Inverse(fa); err != nil {
		return nil, err
	}
	return fa, nil
}

// PseudoFLOPs returns the paper's nominal operation count for one size-n
// transform: 5 n log2 n.
func PseudoFLOPs(n int) (float64, error) {
	if !IsPow2(n) {
		return 0, ErrNotPow2
	}
	return 5 * float64(n) * math.Log2(float64(n)), nil
}

// Energy returns the signal energy sum |x[i]|^2, used by Parseval tests.
func Energy(x []complex128) float64 {
	var e float64
	for _, v := range x {
		re, im := real(v), imag(v)
		e += re*re + im*im
	}
	return e
}

// MaxAbsDiff returns the largest element-wise |a[i]-b[i]|; it reports an
// error on length mismatch.
func MaxAbsDiff(a, b []complex128) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("fft: length mismatch %d vs %d", len(a), len(b))
	}
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m, nil
}
