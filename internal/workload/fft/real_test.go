package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomReal(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestForwardRealMatchesComplexFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, n := range []int{4, 8, 16, 64, 256, 1024} {
		x := randomReal(rng, n)
		// Reference: complex FFT of the real signal.
		z := make([]complex128, n)
		for i, v := range x {
			z[i] = complex(v, 0)
		}
		want, err := ForwardCopy(z)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ForwardReal(x)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(got) != n/2+1 {
			t.Fatalf("n=%d: %d bins, want %d", n, len(got), n/2+1)
		}
		for k := range got {
			if cmplx.Abs(got[k]-want[k]) > 1e-9*float64(n) {
				t.Errorf("n=%d bin %d: %v vs %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestRealRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{4, 16, 128, 2048} {
		x := randomReal(rng, n)
		spec, err := ForwardReal(x)
		if err != nil {
			t.Fatal(err)
		}
		back, err := InverseReal(spec, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d: round trip diverged at %d: %g vs %g", n, i, back[i], x[i])
			}
		}
	}
}

func TestForwardRealValidation(t *testing.T) {
	if _, err := ForwardReal(make([]float64, 12)); err != ErrNotPow2 {
		t.Errorf("non-pow2: %v", err)
	}
	if _, err := ForwardReal(make([]float64, 2)); err != ErrNotPow2 {
		t.Errorf("n=2 too small: %v", err)
	}
	if _, err := InverseReal(make([]complex128, 5), 12); err != ErrNotPow2 {
		t.Errorf("inverse non-pow2: %v", err)
	}
	if _, err := InverseReal(make([]complex128, 4), 16); err == nil {
		t.Error("wrong spectrum length must fail")
	}
	// Complex DC bin cannot come from real input.
	spec := make([]complex128, 9)
	spec[0] = complex(1, 5)
	if _, err := InverseReal(spec, 16); err != ErrBadSpectrum {
		t.Errorf("bad spectrum: %v", err)
	}
}

func TestFullSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	n := 64
	x := randomReal(rng, n)
	spec, err := ForwardReal(x)
	if err != nil {
		t.Fatal(err)
	}
	full, err := FullSpectrum(spec, n)
	if err != nil {
		t.Fatal(err)
	}
	z := make([]complex128, n)
	for i, v := range x {
		z[i] = complex(v, 0)
	}
	want, _ := ForwardCopy(z)
	diff, _ := MaxAbsDiff(full, want)
	if diff > 1e-9*float64(n) {
		t.Errorf("FullSpectrum diff = %g", diff)
	}
	if _, err := FullSpectrum(spec, 12); err != ErrNotPow2 {
		t.Errorf("bad n: %v", err)
	}
	if _, err := FullSpectrum(spec[:3], n); err == nil {
		t.Error("short spectrum must fail")
	}
}

func TestForward2DMatchesDFT2D(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	rows, cols := 8, 16
	x := randomSignal(rng, rows*cols)
	want, err := DFT2D(x, rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	got := append([]complex128(nil), x...)
	if err := Forward2D(got, rows, cols); err != nil {
		t.Fatal(err)
	}
	diff, _ := MaxAbsDiff(got, want)
	if diff > 1e-8*float64(rows*cols) {
		t.Errorf("2D diff = %g", diff)
	}
}

func TestInverse2DRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	rows, cols := 16, 8
	orig := randomSignal(rng, rows*cols)
	x := append([]complex128(nil), orig...)
	if err := Forward2D(x, rows, cols); err != nil {
		t.Fatal(err)
	}
	if err := Inverse2D(x, rows, cols); err != nil {
		t.Fatal(err)
	}
	diff, _ := MaxAbsDiff(x, orig)
	if diff > 1e-9*float64(rows*cols) {
		t.Errorf("2D round-trip diff = %g", diff)
	}
}

func Test2DValidation(t *testing.T) {
	x := make([]complex128, 12)
	if err := Forward2D(x, 3, 4); err != ErrNotPow2 {
		t.Errorf("non-pow2 rows: %v", err)
	}
	if err := Forward2D(make([]complex128, 7), 2, 4); err == nil {
		t.Error("wrong element count must fail")
	}
	if _, err := DFT2D(make([]complex128, 7), 2, 4); err == nil {
		t.Error("DFT2D wrong count must fail")
	}
}

// Property: a 2D separable signal (outer product) transforms to the outer
// product of the 1D transforms.
func TestProp2DSeparability(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 8, 8
		u := randomSignal(rng, rows)
		v := randomSignal(rng, cols)
		x := make([]complex128, rows*cols)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				x[r*cols+c] = u[r] * v[c]
			}
		}
		if err := Forward2D(x, rows, cols); err != nil {
			return false
		}
		fu, err1 := ForwardCopy(u)
		fv, err2 := ForwardCopy(v)
		if err1 != nil || err2 != nil {
			return false
		}
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				want := fu[r] * fv[c]
				if cmplx.Abs(x[r*cols+c]-want) > 1e-8*float64(rows*cols) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkForwardReal4096(b *testing.B) {
	rng := rand.New(rand.NewSource(25))
	x := randomReal(rng, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ForwardReal(x); err != nil {
			b.Fatal(err)
		}
	}
}
