package fft

import (
	"math"
	"math/cmplx"
	"testing"
)

// FuzzRoundTrip checks Forward/Inverse identity and Parseval's theorem on
// arbitrary signals synthesized from fuzz bytes. (Seeds run under plain
// `go test`; `go test -fuzz=FuzzRoundTrip` explores further.)
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 128, 7, 42, 13, 99, 200, 31, 8, 16})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			t.Skip()
		}
		// Signal length: power of two in [4, 256] picked from the data.
		exp := 2 + int(data[0])%7
		n := 1 << uint(exp)
		x := make([]complex128, n)
		for i := range x {
			re := float64(int8(data[(2*i+1)%len(data)])) / 16
			im := float64(int8(data[(2*i+2)%len(data)])) / 16
			x[i] = complex(re, im)
		}
		orig := append([]complex128(nil), x...)
		if err := Forward(x); err != nil {
			t.Fatal(err)
		}
		// Parseval.
		timeE := Energy(orig)
		freqE := Energy(x) / float64(n)
		if math.Abs(timeE-freqE) > 1e-6*(1+timeE)*float64(n) {
			t.Fatalf("Parseval violated: %g vs %g", timeE, freqE)
		}
		if err := Inverse(x); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-7*float64(n) {
				t.Fatalf("round trip diverged at %d", i)
			}
		}
	})
}

// FuzzRealPacking checks the packed real FFT against the complex path.
func FuzzRealPacking(f *testing.F) {
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0})
	f.Add([]byte{128, 128, 128, 128})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			t.Skip()
		}
		exp := 2 + int(data[0])%6
		n := 1 << uint(exp)
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(int8(data[(i+1)%len(data)])) / 8
		}
		spec, err := ForwardReal(x)
		if err != nil {
			t.Fatal(err)
		}
		z := make([]complex128, n)
		for i, v := range x {
			z[i] = complex(v, 0)
		}
		want, err := ForwardCopy(z)
		if err != nil {
			t.Fatal(err)
		}
		for k := range spec {
			if cmplx.Abs(spec[k]-want[k]) > 1e-7*float64(n) {
				t.Fatalf("bin %d: %v vs %v", k, spec[k], want[k])
			}
		}
	})
}
