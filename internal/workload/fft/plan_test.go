package fft

import (
	"math/rand"
	"sync"
	"testing"
)

func TestPlanMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for _, n := range []int{2, 8, 64, 1024, 4096} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		if p.N() != n {
			t.Errorf("N = %d", p.N())
		}
		x := randomSignal(rng, n)
		want, err := ForwardCopy(x)
		if err != nil {
			t.Fatal(err)
		}
		got := append([]complex128(nil), x...)
		if err := p.Execute(got); err != nil {
			t.Fatal(err)
		}
		diff, _ := MaxAbsDiff(got, want)
		if diff > 1e-9*float64(n) {
			t.Errorf("n=%d: plan vs Forward diff = %g", n, diff)
		}
	}
}

func TestPlanInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	p, err := NewPlan(512)
	if err != nil {
		t.Fatal(err)
	}
	orig := randomSignal(rng, 512)
	x := append([]complex128(nil), orig...)
	if err := p.Execute(x); err != nil {
		t.Fatal(err)
	}
	if err := p.ExecuteInverse(x); err != nil {
		t.Fatal(err)
	}
	diff, _ := MaxAbsDiff(x, orig)
	if diff > 1e-9*512 {
		t.Errorf("plan round trip diff = %g", diff)
	}
}

func TestPlanValidation(t *testing.T) {
	if _, err := NewPlan(12); err != ErrNotPow2 {
		t.Errorf("NewPlan(12): %v", err)
	}
	p, _ := NewPlan(8)
	if err := p.Execute(make([]complex128, 4)); err == nil {
		t.Error("wrong length must fail")
	}
	if err := p.ExecuteInverse(make([]complex128, 16)); err == nil {
		t.Error("wrong inverse length must fail")
	}
	if err := p.ExecuteBatch(make([]complex128, 12)); err == nil {
		t.Error("non-multiple batch must fail")
	}
	if err := p.ExecuteBatch(nil); err == nil {
		t.Error("empty batch must fail")
	}
}

func TestPlanBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p, _ := NewPlan(64)
	const rows = 8
	batch := randomSignal(rng, 64*rows)
	want := make([]complex128, len(batch))
	for r := 0; r < rows; r++ {
		row, err := ForwardCopy(batch[r*64 : (r+1)*64])
		if err != nil {
			t.Fatal(err)
		}
		copy(want[r*64:], row)
	}
	if err := p.ExecuteBatch(batch); err != nil {
		t.Fatal(err)
	}
	diff, _ := MaxAbsDiff(batch, want)
	if diff > 1e-9*64*rows {
		t.Errorf("batch diff = %g", diff)
	}
}

func TestPlanConcurrentUse(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	p, _ := NewPlan(256)
	inputs := make([][]complex128, 16)
	wants := make([][]complex128, 16)
	for i := range inputs {
		inputs[i] = randomSignal(rng, 256)
		w, err := ForwardCopy(inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = w
	}
	var wg sync.WaitGroup
	errs := make([]error, len(inputs))
	for i := range inputs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = p.Execute(inputs[i])
		}(i)
	}
	wg.Wait()
	for i := range inputs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		diff, _ := MaxAbsDiff(inputs[i], wants[i])
		if diff > 1e-9*256 {
			t.Errorf("goroutine %d diverged: %g", i, diff)
		}
	}
}

// The point of plans: zero allocations per transform.
func TestPlanExecuteDoesNotAllocate(t *testing.T) {
	p, _ := NewPlan(1024)
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(float64(i%7), float64(i%5))
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := p.Execute(x); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Execute allocates %g objects per run, want 0", allocs)
	}
}

func BenchmarkPlanExecute1024(b *testing.B) {
	p, err := NewPlan(1024)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(float64(i%7), float64(i%5))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Execute(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanVsPlanless quantifies what plan reuse buys over the
// convenience API (which recomputes bit reversal and consults the global
// twiddle cache every call).
func BenchmarkPlanVsPlanless(b *testing.B) {
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = complex(float64(i%11), float64(i%3))
	}
	b.Run("planned", func(b *testing.B) {
		p, err := NewPlan(4096)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := p.Execute(x); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("planless", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := Forward(x); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func TestPlanForCachesPerSize(t *testing.T) {
	a, err := PlanFor(2048)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanFor(2048)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("PlanFor(2048) built two plans for one size")
	}
	c, err := PlanFor(4096)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different sizes must get different plans")
	}
	if _, err := PlanFor(12); err != ErrNotPow2 {
		t.Errorf("PlanFor(12): %v, want ErrNotPow2", err)
	}
	// The cached plan transforms correctly.
	x := make([]complex128, 2048)
	for i := range x {
		x[i] = complex(float64(i%13), float64(i%7))
	}
	want, err := ForwardCopy(x)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Execute(x); err != nil {
		t.Fatal(err)
	}
	diff, err := MaxAbsDiff(x, want)
	if err != nil {
		t.Fatal(err)
	}
	if diff > 1e-8*2048 {
		t.Errorf("cached plan diverged: %g", diff)
	}
}

func TestPlanForConcurrentFirstUse(t *testing.T) {
	// Many goroutines race the first build of one size; all must end up
	// with the same plan and correct transforms.
	const n = 8192
	var wg sync.WaitGroup
	plans := make([]*Plan, 16)
	for g := range plans {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p, err := PlanFor(n)
			if err != nil {
				t.Error(err)
				return
			}
			plans[g] = p
		}(g)
	}
	wg.Wait()
	for g := 1; g < len(plans); g++ {
		if plans[g] != plans[0] {
			t.Fatalf("goroutine %d got a different plan", g)
		}
	}
}

// BenchmarkPlanForVsNewPlan quantifies what the package-level cache buys
// the measure/sim sweep path, which plans the same sizes over and over.
func BenchmarkPlanForVsNewPlan(b *testing.B) {
	sizes := []int{64, 1024, 16384}
	x := make([]complex128, 16384)
	for i := range x {
		x[i] = complex(float64(i%11), float64(i%3))
	}
	b.Run("cached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, n := range sizes {
				p, err := PlanFor(n)
				if err != nil {
					b.Fatal(err)
				}
				if err := p.Execute(x[:n]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, n := range sizes {
				p, err := NewPlan(n)
				if err != nil {
					b.Fatal(err)
				}
				if err := p.Execute(x[:n]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
