package blackscholes

import (
	"errors"
	"fmt"
	"math"
)

// Greeks are the first- and second-order sensitivities of the option
// value — the quantities a real pricing pipeline (the paper's motivating
// workload is throughput option pricing) computes alongside the price.
type Greeks struct {
	Delta float64 // dV/dS
	Gamma float64 // d²V/dS²
	Vega  float64 // dV/dsigma (per 1.0 of vol)
	Theta float64 // dV/dt (per year, holding expiry fixed)
	Rho   float64 // dV/dr (per 1.0 of rate)
}

// pdf is the standard normal density.
func pdf(x float64) float64 {
	return math.Exp(-0.5*x*x) / math.Sqrt(2*math.Pi)
}

// AnalyticGreeks returns the closed-form Black-Scholes sensitivities.
func AnalyticGreeks(o Option) (Greeks, error) {
	if err := o.Validate(); err != nil {
		return Greeks{}, err
	}
	sqrtT := math.Sqrt(o.Time)
	d1 := (math.Log(o.Spot/o.Strike) + (o.Rate+0.5*o.Vol*o.Vol)*o.Time) / (o.Vol * sqrtT)
	d2 := d1 - o.Vol*sqrtT
	disc := math.Exp(-o.Rate * o.Time)
	g := Greeks{
		Gamma: pdf(d1) / (o.Spot * o.Vol * sqrtT),
		Vega:  o.Spot * pdf(d1) * sqrtT,
	}
	switch o.Kind {
	case Call:
		g.Delta = CNDF(d1)
		g.Theta = -o.Spot*pdf(d1)*o.Vol/(2*sqrtT) - o.Rate*o.Strike*disc*CNDF(d2)
		g.Rho = o.Strike * o.Time * disc * CNDF(d2)
	case Put:
		g.Delta = CNDF(d1) - 1
		g.Theta = -o.Spot*pdf(d1)*o.Vol/(2*sqrtT) + o.Rate*o.Strike*disc*CNDF(-d2)
		g.Rho = -o.Strike * o.Time * disc * CNDF(-d2)
	default:
		return Greeks{}, fmt.Errorf("blackscholes: unknown option kind %d", int(o.Kind))
	}
	return g, nil
}

// NumericalGreeks estimates the sensitivities by central finite
// differences of the closed-form price — an independent cross-check of
// AnalyticGreeks used by the test suite.
func NumericalGreeks(o Option) (Greeks, error) {
	if err := o.Validate(); err != nil {
		return Greeks{}, err
	}
	var g Greeks
	// Delta and Gamma in S.
	hS := o.Spot * 1e-4
	up, dn := o, o
	up.Spot += hS
	dn.Spot -= hS
	vu, err := Price(up)
	if err != nil {
		return Greeks{}, err
	}
	vd, err := Price(dn)
	if err != nil {
		return Greeks{}, err
	}
	v0, err := Price(o)
	if err != nil {
		return Greeks{}, err
	}
	g.Delta = (vu - vd) / (2 * hS)
	g.Gamma = (vu - 2*v0 + vd) / (hS * hS)

	// Vega.
	hV := 1e-5
	up, dn = o, o
	up.Vol += hV
	dn.Vol -= hV
	vu, err = Price(up)
	if err != nil {
		return Greeks{}, err
	}
	vd, err = Price(dn)
	if err != nil {
		return Greeks{}, err
	}
	g.Vega = (vu - vd) / (2 * hV)

	// Theta: sensitivity to calendar time passing = -dV/dT.
	hT := math.Min(1e-5, o.Time/4)
	up, dn = o, o
	up.Time += hT
	dn.Time -= hT
	vu, err = Price(up)
	if err != nil {
		return Greeks{}, err
	}
	vd, err = Price(dn)
	if err != nil {
		return Greeks{}, err
	}
	g.Theta = -(vu - vd) / (2 * hT)

	// Rho.
	hR := 1e-6
	up, dn = o, o
	up.Rate += hR
	dn.Rate -= hR
	vu, err = Price(up)
	if err != nil {
		return Greeks{}, err
	}
	vd, err = Price(dn)
	if err != nil {
		return Greeks{}, err
	}
	g.Rho = (vu - vd) / (2 * hR)
	return g, nil
}

// ErrNoConvergence is returned when the implied-volatility solver fails.
var ErrNoConvergence = errors.New("blackscholes: implied volatility did not converge")

// ImpliedVol solves for the volatility that reprices the option to
// target using Newton's method on vega with a bisection fallback. The
// target must lie inside the no-arbitrage band.
func ImpliedVol(o Option, target float64) (float64, error) {
	probe := o
	probe.Vol = 1 // any valid value; Validate checks the rest
	if err := probe.Validate(); err != nil {
		return 0, err
	}
	lower := IntrinsicLowerBound(o)
	var upper float64
	if o.Kind == Call {
		upper = o.Spot
	} else {
		upper = o.Strike * math.Exp(-o.Rate*o.Time)
	}
	if target < lower-1e-12 || target > upper+1e-12 {
		return 0, fmt.Errorf("blackscholes: target %g outside no-arbitrage band [%g, %g]",
			target, lower, upper)
	}
	// Newton iterations with clamping.
	vol := 0.3
	lo, hi := 1e-6, 8.0
	for iter := 0; iter < 100; iter++ {
		trial := o
		trial.Vol = vol
		price, err := Price(trial)
		if err != nil {
			return 0, err
		}
		diff := price - target
		if math.Abs(diff) < 1e-12*(1+target) {
			return vol, nil
		}
		if diff > 0 {
			hi = math.Min(hi, vol)
		} else {
			lo = math.Max(lo, vol)
		}
		g, err := AnalyticGreeks(trial)
		if err != nil {
			return 0, err
		}
		next := vol
		if g.Vega > 1e-12 {
			next = vol - diff/g.Vega
		}
		if next <= lo || next >= hi || math.IsNaN(next) {
			next = (lo + hi) / 2 // bisection fallback
		}
		if math.Abs(next-vol) < 1e-14 {
			return next, nil
		}
		vol = next
	}
	return 0, ErrNoConvergence
}
