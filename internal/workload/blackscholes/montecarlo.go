package blackscholes

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// MCResult is a Monte Carlo price estimate with its standard error.
type MCResult struct {
	Price    float64
	StdError float64
	Paths    int
}

// MonteCarloPrice estimates the option value by simulating terminal
// prices under geometric Brownian motion:
//
//	S_T = S · exp((r - σ²/2)T + σ√T·Z),  Z ~ N(0,1)
//
// discounting the expected payoff at the risk-free rate. It is an
// independent implementation of the same quantity the closed form
// computes — the pricing analogue of the naive DFT that cross-checks the
// FFT — and converges to Price(o) at the usual 1/sqrt(paths) rate.
// Antithetic variates halve the variance at no extra randomness cost.
func MonteCarloPrice(o Option, paths int, seed int64) (MCResult, error) {
	if err := o.Validate(); err != nil {
		return MCResult{}, err
	}
	if paths < 2 {
		return MCResult{}, errors.New("blackscholes: need at least 2 paths")
	}
	drift := (o.Rate - 0.5*o.Vol*o.Vol) * o.Time
	diffusion := o.Vol * math.Sqrt(o.Time)
	disc := math.Exp(-o.Rate * o.Time)
	payoff := func(sT float64) float64 {
		switch o.Kind {
		case Call:
			if sT > o.Strike {
				return sT - o.Strike
			}
		case Put:
			if sT < o.Strike {
				return o.Strike - sT
			}
		}
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	var sum, sumSq float64
	n := paths / 2 // antithetic pairs
	for i := 0; i < n; i++ {
		z := rng.NormFloat64()
		up := disc * payoff(o.Spot*math.Exp(drift+diffusion*z))
		dn := disc * payoff(o.Spot*math.Exp(drift-diffusion*z))
		v := (up + dn) / 2
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return MCResult{
		Price:    mean,
		StdError: math.Sqrt(variance / float64(n)),
		Paths:    2 * n,
	}, nil
}

// MonteCarloPriceParallel distributes the paths over workers goroutines
// (0 means GOMAXPROCS), each with an independent, deterministic
// sub-stream, and pools the estimates.
func MonteCarloPriceParallel(o Option, paths int, seed int64, workers int) (MCResult, error) {
	if err := o.Validate(); err != nil {
		return MCResult{}, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if paths < 2*workers {
		return MonteCarloPrice(o, paths, seed)
	}
	per := paths / workers
	results := make([]MCResult, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w], errs[w] = MonteCarloPrice(o, per, seed+int64(w)*7919)
		}(w)
	}
	wg.Wait()
	var sum, varSum float64
	total := 0
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return MCResult{}, errs[w]
		}
		sum += results[w].Price * float64(results[w].Paths)
		varSum += results[w].StdError * results[w].StdError *
			float64(results[w].Paths) * float64(results[w].Paths)
		total += results[w].Paths
	}
	return MCResult{
		Price:    sum / float64(total),
		StdError: math.Sqrt(varSum) / float64(total),
		Paths:    total,
	}, nil
}
