package blackscholes

import (
	"math"
	"testing"
)

func TestMonteCarloConvergesToClosedForm(t *testing.T) {
	opts := []Option{
		{Call, 42, 40, 0.10, 0.20, 0.5},
		{Put, 42, 40, 0.10, 0.20, 0.5},
		{Call, 100, 120, 0.03, 0.45, 2},
		{Put, 80, 100, 0.05, 0.30, 1},
	}
	for _, o := range opts {
		want, err := Price(o)
		if err != nil {
			t.Fatal(err)
		}
		mc, err := MonteCarloPrice(o, 400000, 7)
		if err != nil {
			t.Fatal(err)
		}
		// Within 5 standard errors (plus an absolute floor for tiny
		// prices).
		tol := 5*mc.StdError + 1e-3
		if math.Abs(mc.Price-want) > tol {
			t.Errorf("%+v: MC %g +- %g vs closed form %g", o, mc.Price, mc.StdError, want)
		}
	}
}

func TestMonteCarloErrorShrinksWithPaths(t *testing.T) {
	o := Option{Call, 100, 105, 0.05, 0.25, 1}
	small, err := MonteCarloPrice(o, 10000, 3)
	if err != nil {
		t.Fatal(err)
	}
	big, err := MonteCarloPrice(o, 160000, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 16x the paths -> ~4x smaller standard error.
	ratio := small.StdError / big.StdError
	if ratio < 2.5 || ratio > 6.5 {
		t.Errorf("stderr ratio = %g, want ~4 for 16x paths", ratio)
	}
}

func TestMonteCarloDeterministic(t *testing.T) {
	o := Option{Call, 100, 100, 0.05, 0.2, 1}
	a, err := MonteCarloPrice(o, 10000, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := MonteCarloPrice(o, 10000, 11)
	if a != b {
		t.Error("same seed must reproduce")
	}
	c, _ := MonteCarloPrice(o, 10000, 12)
	if a == c {
		t.Error("different seeds should differ")
	}
}

func TestMonteCarloValidation(t *testing.T) {
	bad := Option{Call, -1, 100, 0.05, 0.2, 1}
	if _, err := MonteCarloPrice(bad, 1000, 1); err == nil {
		t.Error("invalid option must fail")
	}
	good := Option{Call, 100, 100, 0.05, 0.2, 1}
	if _, err := MonteCarloPrice(good, 1, 1); err == nil {
		t.Error("too few paths must fail")
	}
	if _, err := MonteCarloPriceParallel(bad, 1000, 1, 4); err == nil {
		t.Error("parallel invalid option must fail")
	}
}

func TestMonteCarloParallelMatchesSerialAccuracy(t *testing.T) {
	o := Option{Put, 95, 100, 0.02, 0.35, 1.5}
	want, err := Price(o)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MonteCarloPriceParallel(o, 400000, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Paths < 390000 {
		t.Errorf("paths = %d, want ~400k", mc.Paths)
	}
	if math.Abs(mc.Price-want) > 5*mc.StdError+1e-3 {
		t.Errorf("parallel MC %g +- %g vs closed form %g", mc.Price, mc.StdError, want)
	}
	// Tiny path counts fall back to the serial path.
	small, err := MonteCarloPriceParallel(o, 4, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if small.Paths > 4 {
		t.Errorf("fallback paths = %d", small.Paths)
	}
}

func BenchmarkMonteCarloParallel(b *testing.B) {
	o := Option{Call, 100, 105, 0.05, 0.25, 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MonteCarloPriceParallel(o, 100000, int64(i), 0); err != nil {
			b.Fatal(err)
		}
	}
}
