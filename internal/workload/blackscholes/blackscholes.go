// Package blackscholes implements the Black-Scholes European option
// pricing kernel studied by the paper (its PARSEC-derived CPU workload and
// generated hardware pipelines). Pricing is closed-form; the batch driver
// mirrors the paper's throughput-driven measurement where many independent
// options are evaluated. Accounting is options priced and 10 compulsory
// bytes per option.
package blackscholes

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Kind selects call or put.
type Kind int

const (
	// Call option.
	Call Kind = iota
	// Put option.
	Put
)

// String names the option kind.
func (k Kind) String() string {
	if k == Call {
		return "call"
	}
	return "put"
}

// Option is one European option contract plus market parameters.
type Option struct {
	Kind   Kind
	Spot   float64 // current underlying price S
	Strike float64 // strike price K
	Rate   float64 // risk-free rate r (annualized, continuous)
	Vol    float64 // volatility sigma (annualized)
	Time   float64 // time to expiry in years T
}

// Validate reports an error for non-physical parameters.
func (o Option) Validate() error {
	switch {
	case o.Spot <= 0 || math.IsNaN(o.Spot):
		return fmt.Errorf("blackscholes: spot %g must be positive", o.Spot)
	case o.Strike <= 0 || math.IsNaN(o.Strike):
		return fmt.Errorf("blackscholes: strike %g must be positive", o.Strike)
	case o.Vol <= 0 || math.IsNaN(o.Vol):
		return fmt.Errorf("blackscholes: volatility %g must be positive", o.Vol)
	case o.Time <= 0 || math.IsNaN(o.Time):
		return fmt.Errorf("blackscholes: time %g must be positive", o.Time)
	case math.IsNaN(o.Rate):
		return errors.New("blackscholes: rate is NaN")
	}
	return nil
}

// CNDF is the cumulative distribution function of the standard normal,
// computed from the error function: Phi(x) = (1 + erf(x/sqrt2)) / 2.
func CNDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// Price returns the Black-Scholes value of the option.
func Price(o Option) (float64, error) {
	if err := o.Validate(); err != nil {
		return 0, err
	}
	sqrtT := math.Sqrt(o.Time)
	d1 := (math.Log(o.Spot/o.Strike) + (o.Rate+0.5*o.Vol*o.Vol)*o.Time) / (o.Vol * sqrtT)
	d2 := d1 - o.Vol*sqrtT
	disc := math.Exp(-o.Rate * o.Time)
	switch o.Kind {
	case Call:
		return o.Spot*CNDF(d1) - o.Strike*disc*CNDF(d2), nil
	case Put:
		return o.Strike*disc*CNDF(-d2) - o.Spot*CNDF(-d1), nil
	default:
		return 0, fmt.Errorf("blackscholes: unknown option kind %d", int(o.Kind))
	}
}

// PriceBatch prices every option into out (allocated when nil) serially.
func PriceBatch(opts []Option, out []float64) ([]float64, error) {
	if out == nil {
		out = make([]float64, len(opts))
	}
	if len(out) != len(opts) {
		return nil, fmt.Errorf("blackscholes: out length %d != options %d", len(out), len(opts))
	}
	for i, o := range opts {
		p, err := Price(o)
		if err != nil {
			return nil, fmt.Errorf("option %d: %w", i, err)
		}
		out[i] = p
	}
	return out, nil
}

// PriceBatchParallel prices options across workers goroutines (0 means
// GOMAXPROCS). Options are validated up front so workers cannot fail.
func PriceBatchParallel(opts []Option, workers int) ([]float64, error) {
	for i, o := range opts {
		if err := o.Validate(); err != nil {
			return nil, fmt.Errorf("option %d: %w", i, err)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]float64, len(opts))
	var wg sync.WaitGroup
	chunk := (len(opts) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(opts) {
			hi = len(opts)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				// Validation already done; Price cannot fail here.
				p, _ := Price(opts[i])
				out[i] = p
			}
		}(lo, hi)
	}
	wg.Wait()
	return out, nil
}

// Parity returns the put-call parity residual C - P - (S - K e^{-rT});
// zero (to rounding) for consistent pricing.
func Parity(call, put float64, o Option) float64 {
	return call - put - (o.Spot - o.Strike*math.Exp(-o.Rate*o.Time))
}

// RandomPortfolio generates n options with PARSEC-like parameter ranges,
// deterministic for a given seed: spots 5..200, strikes 5..200, rate
// 1%..10%, vol 5%..90%, expiry 0.05..10 years, alternating call/put.
func RandomPortfolio(n int, seed int64) ([]Option, error) {
	if n <= 0 {
		return nil, errors.New("blackscholes: portfolio size must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	uniform := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }
	opts := make([]Option, n)
	for i := range opts {
		kind := Call
		if i%2 == 1 {
			kind = Put
		}
		opts[i] = Option{
			Kind:   kind,
			Spot:   uniform(5, 200),
			Strike: uniform(5, 200),
			Rate:   uniform(0.01, 0.10),
			Vol:    uniform(0.05, 0.90),
			Time:   uniform(0.05, 10),
		}
	}
	return opts, nil
}

// IntrinsicLowerBound returns the no-arbitrage lower bound of the option
// value (European): call >= S - K e^{-rT}, put >= K e^{-rT} - S, both
// floored at 0.
func IntrinsicLowerBound(o Option) float64 {
	disc := o.Strike * math.Exp(-o.Rate*o.Time)
	var v float64
	if o.Kind == Call {
		v = o.Spot - disc
	} else {
		v = disc - o.Spot
	}
	if v < 0 {
		return 0
	}
	return v
}
