package blackscholes

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAnalyticGreeksKnownValues(t *testing.T) {
	// Hull's example again: S=42, K=40, r=10%, sigma=20%, T=0.5.
	call := Option{Call, 42, 40, 0.10, 0.20, 0.5}
	g, err := AnalyticGreeks(call)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Delta-0.7791) > 5e-4 {
		t.Errorf("call delta = %.4f, want ~0.779", g.Delta)
	}
	put := call
	put.Kind = Put
	gp, err := AnalyticGreeks(put)
	if err != nil {
		t.Fatal(err)
	}
	// Delta parity: deltaCall - deltaPut = 1.
	if math.Abs((g.Delta-gp.Delta)-1) > 1e-12 {
		t.Errorf("delta parity violated: %g vs %g", g.Delta, gp.Delta)
	}
	// Gamma and vega are kind-independent.
	if g.Gamma != gp.Gamma || g.Vega != gp.Vega {
		t.Error("gamma/vega must match across call and put")
	}
	if g.Gamma <= 0 || g.Vega <= 0 {
		t.Error("gamma and vega must be positive")
	}
}

func TestAnalyticMatchesNumericalGreeks(t *testing.T) {
	opts, err := RandomPortfolio(40, 99)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range opts {
		a, err := AnalyticGreeks(o)
		if err != nil {
			t.Fatal(err)
		}
		n, err := NumericalGreeks(o)
		if err != nil {
			t.Fatal(err)
		}
		check := func(name string, av, nv, scale float64) {
			if math.Abs(av-nv) > 1e-3*(1+scale) {
				t.Errorf("%+v: %s analytic %g vs numerical %g", o, name, av, nv)
			}
		}
		check("delta", a.Delta, n.Delta, 1)
		check("gamma", a.Gamma, n.Gamma, math.Abs(a.Gamma))
		check("vega", a.Vega, n.Vega, math.Abs(a.Vega))
		check("theta", a.Theta, n.Theta, math.Abs(a.Theta))
		check("rho", a.Rho, n.Rho, math.Abs(a.Rho))
	}
}

func TestGreeksValidation(t *testing.T) {
	bad := Option{Call, -1, 100, 0.05, 0.2, 1}
	if _, err := AnalyticGreeks(bad); err == nil {
		t.Error("invalid option must fail")
	}
	if _, err := NumericalGreeks(bad); err == nil {
		t.Error("invalid option must fail numerically too")
	}
	unknown := Option{Kind(9), 100, 100, 0.05, 0.2, 1}
	if _, err := AnalyticGreeks(unknown); err == nil {
		t.Error("unknown kind must fail")
	}
}

func TestCallDeltaBounds(t *testing.T) {
	// Call delta in (0, 1); deep ITM -> 1, deep OTM -> 0.
	deep := Option{Call, 1000, 10, 0.05, 0.2, 1}
	g, _ := AnalyticGreeks(deep)
	if g.Delta < 0.999 {
		t.Errorf("deep ITM delta = %g", g.Delta)
	}
	otm := Option{Call, 10, 1000, 0.05, 0.2, 1}
	g, _ = AnalyticGreeks(otm)
	if g.Delta > 0.001 {
		t.Errorf("deep OTM delta = %g", g.Delta)
	}
}

func TestImpliedVolRoundTrip(t *testing.T) {
	opts, err := RandomPortfolio(50, 123)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range opts {
		price, err := Price(o)
		if err != nil {
			t.Fatal(err)
		}
		// Skip numerically degenerate targets (price at the band edge,
		// where vega vanishes and any vol reprices equally).
		if price < 1e-6 || price > o.Spot-1e-6 {
			continue
		}
		iv, err := ImpliedVol(o, price)
		if err != nil {
			t.Fatalf("%+v: %v", o, err)
		}
		// Either the vol matches, or it reprices identically (flat vega).
		trial := o
		trial.Vol = iv
		back, err := Price(trial)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(back-price) > 1e-6*(1+price) {
			t.Errorf("%+v: implied vol %g reprices to %g, want %g", o, iv, back, price)
		}
	}
}

func TestImpliedVolRejectsArbitrage(t *testing.T) {
	o := Option{Call, 100, 100, 0.05, 0.3, 1}
	if _, err := ImpliedVol(o, -1); err == nil {
		t.Error("negative price must fail")
	}
	if _, err := ImpliedVol(o, 150); err == nil {
		t.Error("price above spot must fail for a call")
	}
	bad := o
	bad.Spot = -1
	if _, err := ImpliedVol(bad, 5); err == nil {
		t.Error("invalid option must fail")
	}
}

// Property: vega > 0 implies price is strictly monotone in vol, so the
// implied vol of a higher target is higher.
func TestPropImpliedVolMonotone(t *testing.T) {
	o := Option{Call, 100, 110, 0.03, 0.4, 2}
	prop := func(seed int64) bool {
		base, err := Price(o)
		if err != nil {
			return false
		}
		lo, err1 := ImpliedVol(o, base*0.9)
		hi, err2 := ImpliedVol(o, base*1.1)
		if err1 != nil || err2 != nil {
			return false
		}
		return hi > lo
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAnalyticGreeks(b *testing.B) {
	o := Option{Call, 100, 105, 0.05, 0.25, 0.75}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyticGreeks(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkImpliedVol(b *testing.B) {
	o := Option{Call, 100, 105, 0.05, 0.25, 0.75}
	price, err := Price(o)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ImpliedVol(o, price); err != nil {
			b.Fatal(err)
		}
	}
}
