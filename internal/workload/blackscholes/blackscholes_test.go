package blackscholes

import (
	"math"
	"testing"
	"testing/quick"
)

// Reference values computed from the closed-form solution (cross-checked
// against standard option-pricing tables).
func TestKnownPrices(t *testing.T) {
	cases := []struct {
		o    Option
		want float64
	}{
		// Hull's classic example: S=42, K=40, r=10%, sigma=20%, T=0.5.
		{Option{Call, 42, 40, 0.10, 0.20, 0.5}, 4.7594},
		{Option{Put, 42, 40, 0.10, 0.20, 0.5}, 0.8086},
		// At-the-money, one year.
		{Option{Call, 100, 100, 0.05, 0.25, 1}, 12.3360},
	}
	for _, c := range cases {
		got, err := Price(c.o)
		if err != nil {
			t.Fatalf("%+v: %v", c.o, err)
		}
		if math.Abs(got-c.want) > 5e-4 {
			t.Errorf("Price(%+v) = %.4f, want %.4f", c.o, got, c.want)
		}
	}
}

func TestCNDF(t *testing.T) {
	if got := CNDF(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CNDF(0) = %g, want 0.5", got)
	}
	if got := CNDF(1.96); math.Abs(got-0.9750) > 1e-4 {
		t.Errorf("CNDF(1.96) = %g, want ~0.975", got)
	}
	// Symmetry: Phi(-x) = 1 - Phi(x).
	for _, x := range []float64{0.3, 1.1, 2.7} {
		if d := CNDF(-x) - (1 - CNDF(x)); math.Abs(d) > 1e-12 {
			t.Errorf("CNDF symmetry violated at %g: %g", x, d)
		}
	}
}

func TestPutCallParity(t *testing.T) {
	o := Option{Call, 90, 100, 0.03, 0.4, 2}
	call, err := Price(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Kind = Put
	put, err := Price(o)
	if err != nil {
		t.Fatal(err)
	}
	if resid := Parity(call, put, o); math.Abs(resid) > 1e-10 {
		t.Errorf("parity residual = %g", resid)
	}
}

func TestValidation(t *testing.T) {
	bad := []Option{
		{Call, -1, 100, 0.05, 0.2, 1},
		{Call, 100, 0, 0.05, 0.2, 1},
		{Call, 100, 100, 0.05, -0.2, 1},
		{Call, 100, 100, 0.05, 0.2, 0},
		{Call, math.NaN(), 100, 0.05, 0.2, 1},
		{Call, 100, 100, math.NaN(), 0.2, 1},
	}
	for i, o := range bad {
		if _, err := Price(o); err == nil {
			t.Errorf("case %d (%+v) should fail", i, o)
		}
	}
	if _, err := Price(Option{Kind: Kind(7), Spot: 1, Strike: 1, Vol: 0.1, Time: 1}); err == nil {
		t.Error("unknown kind must fail")
	}
}

func TestKindString(t *testing.T) {
	if Call.String() != "call" || Put.String() != "put" {
		t.Error("Kind.String mismatch")
	}
}

func TestBatchMatchesScalar(t *testing.T) {
	opts, err := RandomPortfolio(500, 42)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := PriceBatch(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 3, 16} {
		par, err := PriceBatchParallel(opts, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range serial {
			if serial[i] != par[i] {
				t.Fatalf("workers=%d: mismatch at %d: %g vs %g", workers, i, serial[i], par[i])
			}
		}
	}
}

func TestBatchErrors(t *testing.T) {
	opts := []Option{{Call, 100, 100, 0.05, 0.2, 1}, {Call, -5, 100, 0.05, 0.2, 1}}
	if _, err := PriceBatch(opts, nil); err == nil {
		t.Error("invalid option in batch must fail")
	}
	if _, err := PriceBatchParallel(opts, 2); err == nil {
		t.Error("invalid option in parallel batch must fail")
	}
	if _, err := PriceBatch(opts[:1], make([]float64, 5)); err == nil {
		t.Error("wrong out length must fail")
	}
}

func TestRandomPortfolioDeterministic(t *testing.T) {
	a, err := RandomPortfolio(10, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := RandomPortfolio(10, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("portfolio generation not deterministic")
		}
	}
	c, _ := RandomPortfolio(10, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
	if _, err := RandomPortfolio(0, 1); err == nil {
		t.Error("empty portfolio must fail")
	}
}

// Property: price within no-arbitrage bounds — above intrinsic lower
// bound, call below spot, put below discounted strike.
func TestPropNoArbitrageBounds(t *testing.T) {
	prop := func(seed int64) bool {
		opts, err := RandomPortfolio(50, seed)
		if err != nil {
			return false
		}
		for _, o := range opts {
			p, err := Price(o)
			if err != nil {
				return false
			}
			if p < IntrinsicLowerBound(o)-1e-9 {
				return false
			}
			if o.Kind == Call && p > o.Spot+1e-9 {
				return false
			}
			if o.Kind == Put && p > o.Strike*math.Exp(-o.Rate*o.Time)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: call price is monotone increasing in spot and volatility.
func TestPropMonotonicity(t *testing.T) {
	base := Option{Call, 100, 100, 0.05, 0.3, 1}
	prev := -1.0
	for s := 50.0; s <= 150; s += 5 {
		o := base
		o.Spot = s
		p, err := Price(o)
		if err != nil {
			t.Fatal(err)
		}
		if p < prev {
			t.Fatalf("call price decreased in spot at S=%g", s)
		}
		prev = p
	}
	prev = -1
	for v := 0.05; v <= 1.0; v += 0.05 {
		o := base
		o.Vol = v
		p, err := Price(o)
		if err != nil {
			t.Fatal(err)
		}
		if p < prev {
			t.Fatalf("call price decreased in vol at sigma=%g", v)
		}
		prev = p
	}
}

// Property: parity holds across the whole random portfolio.
func TestPropParityPortfolio(t *testing.T) {
	prop := func(seed int64) bool {
		opts, err := RandomPortfolio(20, seed)
		if err != nil {
			return false
		}
		for _, o := range opts {
			co, po := o, o
			co.Kind, po.Kind = Call, Put
			c, err1 := Price(co)
			p, err2 := Price(po)
			if err1 != nil || err2 != nil {
				return false
			}
			if math.Abs(Parity(c, p, o)) > 1e-8*o.Spot {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPriceSingle(b *testing.B) {
	o := Option{Call, 100, 105, 0.05, 0.25, 0.75}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Price(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPriceBatchParallel(b *testing.B) {
	opts, err := RandomPortfolio(1<<14, 11)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PriceBatchParallel(opts, 0); err != nil {
			b.Fatal(err)
		}
	}
}
