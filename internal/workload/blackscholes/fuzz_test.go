package blackscholes

import (
	"math"
	"testing"
)

// FuzzNoArbitrage drives Price with arbitrary (bounded) parameters and
// checks the no-arbitrage envelope and put-call parity on every valid
// draw.
func FuzzNoArbitrage(f *testing.F) {
	f.Add(100.0, 100.0, 0.05, 0.2, 1.0)
	f.Add(42.0, 40.0, 0.10, 0.2, 0.5)
	f.Add(1.0, 500.0, 0.0, 0.9, 10.0)
	f.Fuzz(func(t *testing.T, spot, strike, rate, vol, expiry float64) {
		o := Option{Kind: Call, Spot: spot, Strike: strike, Rate: rate, Vol: vol, Time: expiry}
		if o.Validate() != nil {
			t.Skip()
		}
		// Bound the domain to numerically sane territory.
		if spot > 1e6 || strike > 1e6 || vol > 5 || expiry > 50 ||
			rate > 1 || rate < -0.5 {
			t.Skip()
		}
		call, err := Price(o)
		if err != nil {
			t.Fatal(err)
		}
		if call < IntrinsicLowerBound(o)-1e-6*(1+spot) {
			t.Fatalf("call %g below intrinsic bound %g", call, IntrinsicLowerBound(o))
		}
		if call > spot+1e-9*(1+spot) {
			t.Fatalf("call %g above spot %g", call, spot)
		}
		po := o
		po.Kind = Put
		put, err := Price(po)
		if err != nil {
			t.Fatal(err)
		}
		if resid := Parity(call, put, o); math.Abs(resid) > 1e-6*(1+spot+strike) {
			t.Fatalf("parity residual %g", resid)
		}
	})
}
