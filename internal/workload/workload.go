// Package workload defines the kernel-neutral operation accounting used
// throughout heterosim and the registry of studied workloads (Table 3 of
// the paper): dense matrix-matrix multiplication (MMM), fast Fourier
// transform (FFT), and Black-Scholes option pricing (BS).
//
// The paper's performance metrics are defined over nominal operation
// counts, not instructions executed: FFT uses the 5 N log2 N
// "pseudo-FLOP" convention, MMM uses 2 N^3, and Black-Scholes counts
// options priced. Compulsory off-chip traffic is likewise nominal: the
// bytes that must cross the pins assuming perfect on-chip reuse.
package workload

import (
	"errors"
	"fmt"
	"math"

	"github.com/calcm/heterosim/internal/paper"
)

// Counts is the nominal work of one kernel invocation.
type Counts struct {
	FLOPs float64 // nominal floating-point operations
	Bytes float64 // compulsory off-chip bytes
	Items float64 // domain-specific unit (options, transforms, matrices)
}

// ArithmeticIntensity returns FLOPs per compulsory byte.
func (c Counts) ArithmeticIntensity() (float64, error) {
	if c.Bytes <= 0 {
		return 0, errors.New("workload: no byte traffic recorded")
	}
	return c.FLOPs / c.Bytes, nil
}

// Add accumulates other into c.
func (c Counts) Add(other Counts) Counts {
	return Counts{
		FLOPs: c.FLOPs + other.FLOPs,
		Bytes: c.Bytes + other.Bytes,
		Items: c.Items + other.Items,
	}
}

// Info describes one workload for reporting purposes.
type Info struct {
	ID             paper.WorkloadID
	Name           string
	ThroughputUnit string // e.g. "GFLOP/s", "Mopt/s"
	WorkUnit       string // e.g. "pseudo-GFLOP", "option"
	Description    string
}

// Registry returns the Table 3 workload descriptors, keyed by ID.
func Registry() map[paper.WorkloadID]Info {
	return map[paper.WorkloadID]Info{
		paper.MMM: {
			ID: paper.MMM, Name: "Dense Matrix Multiplication",
			ThroughputUnit: "GFLOP/s", WorkUnit: "FLOP",
			Description: "high arithmetic intensity, simple memory requirements",
		},
		paper.BS: {
			ID: paper.BS, Name: "Black-Scholes",
			ThroughputUnit: "Mopt/s", WorkUnit: "option",
			Description: "rich mixture of arithmetic operators",
		},
		paper.FFT64: {
			ID: paper.FFT64, Name: "Fast Fourier Transform (N=64)",
			ThroughputUnit: "pseudo-GFLOP/s", WorkUnit: "pseudo-FLOP",
			Description: "complex dataflow and memory requirements",
		},
		paper.FFT1024: {
			ID: paper.FFT1024, Name: "Fast Fourier Transform (N=1024)",
			ThroughputUnit: "pseudo-GFLOP/s", WorkUnit: "pseudo-FLOP",
			Description: "complex dataflow and memory requirements",
		},
		paper.FFT16384: {
			ID: paper.FFT16384, Name: "Fast Fourier Transform (N=16384)",
			ThroughputUnit: "pseudo-GFLOP/s", WorkUnit: "pseudo-FLOP",
			Description: "complex dataflow and memory requirements",
		},
	}
}

// FFTCounts returns the nominal work of one size-n single-precision FFT:
// 5 n log2 n pseudo-FLOPs and 16 n compulsory bytes (complex input
// streamed in, complex output streamed out). n must be a power of two.
func FFTCounts(n int) (Counts, error) {
	if err := CheckPow2(n); err != nil {
		return Counts{}, err
	}
	l2 := math.Log2(float64(n))
	return Counts{
		FLOPs: 5 * float64(n) * l2,
		Bytes: paper.FFTBytesPerElement * float64(n),
		Items: 1,
	}, nil
}

// MMMCounts returns the nominal work of one n x n x n single-precision
// matrix multiplication: 2 n^3 FLOPs. Compulsory bytes assume blocked
// execution at block size b fitting on chip: each b-block of C requires
// streaming a row-panel of A and column-panel of B, amounting to
// 2*4*n^2*(n/b) bytes total (the paper's footnote-3 accounting).
func MMMCounts(n int, block float64) (Counts, error) {
	if n <= 0 {
		return Counts{}, errors.New("workload: MMM size must be positive")
	}
	if block <= 0 || block > float64(n) {
		return Counts{}, fmt.Errorf("workload: MMM block %g out of range (0, %d]", block, n)
	}
	nf := float64(n)
	flops := 2 * nf * nf * nf
	bytes := flops / paper.MMMArithmeticIntensity(block)
	return Counts{FLOPs: flops, Bytes: bytes, Items: 1}, nil
}

// BSCounts returns the nominal work of pricing k options: k options and
// 10 k compulsory bytes (paper footnote). FLOPs are not the reported
// metric for BS; we still account the closed-form op mix (~72 flops per
// option including the polynomial CNDF) for roofline analysis.
func BSCounts(k int) (Counts, error) {
	if k <= 0 {
		return Counts{}, errors.New("workload: option count must be positive")
	}
	const flopsPerOption = 72
	return Counts{
		FLOPs: flopsPerOption * float64(k),
		Bytes: paper.BSBytesPerOption * float64(k),
		Items: float64(k),
	}, nil
}

// CheckPow2 reports an error unless n is a power of two >= 2.
func CheckPow2(n int) error {
	if n < 2 || n&(n-1) != 0 {
		return fmt.Errorf("workload: size %d is not a power of two >= 2", n)
	}
	return nil
}

// Log2Int returns log2(n) for a power-of-two n.
func Log2Int(n int) (int, error) {
	if err := CheckPow2(n); err != nil {
		return 0, err
	}
	l := 0
	for v := n; v > 1; v >>= 1 {
		l++
	}
	return l, nil
}

// ForID returns the Counts of the canonical invocation of a Table 5
// workload ID: one FFT of the embedded size, one 128-blocked 1024^3 MMM,
// or one option.
func ForID(id paper.WorkloadID) (Counts, error) {
	switch id {
	case paper.MMM:
		return MMMCounts(1024, paper.MMMBlockN)
	case paper.BS:
		return BSCounts(1)
	case paper.FFT64:
		return FFTCounts(64)
	case paper.FFT1024:
		return FFTCounts(1024)
	case paper.FFT16384:
		return FFTCounts(16384)
	default:
		return Counts{}, fmt.Errorf("workload: unknown workload %q", id)
	}
}

// BytesPerUnitWork returns the compulsory bytes per reported work unit
// (per pseudo-FLOP for FFT, per FLOP for MMM, per option for BS) — the
// quantity that converts device throughput into bandwidth demand.
func BytesPerUnitWork(id paper.WorkloadID) (float64, error) {
	c, err := ForID(id)
	if err != nil {
		return 0, err
	}
	switch id {
	case paper.BS:
		return c.Bytes / c.Items, nil
	default:
		return c.Bytes / c.FLOPs, nil
	}
}
