package mmm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m, err := New(rows, cols)
	if err != nil {
		panic(err)
	}
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewRejectsBadDims(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Error("zero rows must fail")
	}
	if _, err := New(4, -1); err == nil {
		t.Error("negative cols must fail")
	}
}

func TestAtSet(t *testing.T) {
	m, _ := New(3, 4)
	m.Set(1, 2, 7.5)
	if m.At(1, 2) != 7.5 {
		t.Errorf("At(1,2) = %g", m.At(1, 2))
	}
	if m.At(0, 0) != 0 {
		t.Error("fresh matrix not zeroed")
	}
}

func TestNaiveKnownProduct(t *testing.T) {
	a, _ := New(2, 3)
	b, _ := New(3, 2)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	copy(b.Data, []float64{7, 8, 9, 10, 11, 12})
	c, err := Naive(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Errorf("C[%d] = %g, want %g", i, c.Data[i], w)
		}
	}
}

func TestIdentityIsNeutral(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 17, 17)
	id, _ := Identity(17)
	left, err := Naive(id, a)
	if err != nil {
		t.Fatal(err)
	}
	right, err := Naive(a, id)
	if err != nil {
		t.Fatal(err)
	}
	if !left.Equalish(a, 1e-12) || !right.Equalish(a, 1e-12) {
		t.Error("identity product mismatch")
	}
}

func TestBlockedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, size := range []struct{ m, k, n, block int }{
		{8, 8, 8, 4},
		{33, 17, 29, 8},  // non-divisible blocking
		{64, 64, 64, 16}, // divisible blocking
		{5, 5, 5, 100},   // block larger than matrix
	} {
		a := randomMatrix(rng, size.m, size.k)
		b := randomMatrix(rng, size.k, size.n)
		want, err := Naive(a, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Blocked(a, b, size.block)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equalish(want, 1e-9) {
			t.Errorf("blocked(%+v) != naive", size)
		}
	}
}

func TestParallelMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(rng, 61, 47)
	b := randomMatrix(rng, 47, 53)
	want, _ := Naive(a, b)
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got, err := Parallel(a, b, 16, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !got.Equalish(want, 1e-9) {
			t.Errorf("parallel(workers=%d) != naive", workers)
		}
	}
}

func TestDimensionMismatch(t *testing.T) {
	a, _ := New(2, 3)
	b, _ := New(4, 2)
	if _, err := Naive(a, b); err == nil {
		t.Error("naive must reject mismatched dims")
	}
	if _, err := Blocked(a, b, 2); err == nil {
		t.Error("blocked must reject mismatched dims")
	}
	if _, err := Parallel(a, b, 2, 2); err == nil {
		t.Error("parallel must reject mismatched dims")
	}
	if _, err := Naive(nil, b); err == nil {
		t.Error("nil matrix must fail")
	}
}

func TestBadBlockSize(t *testing.T) {
	a, _ := New(4, 4)
	b, _ := New(4, 4)
	if _, err := Blocked(a, b, 0); err == nil {
		t.Error("zero block must fail")
	}
	if _, err := Parallel(a, b, -1, 2); err == nil {
		t.Error("negative block must fail")
	}
}

func TestClone(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomMatrix(rng, 5, 5)
	c := a.Clone()
	c.Set(0, 0, 999)
	if a.At(0, 0) == 999 {
		t.Error("Clone shares storage")
	}
}

func TestFLOPs(t *testing.T) {
	got, err := FLOPs(1024, 1024, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2*1024*1024*1024 {
		t.Errorf("FLOPs = %g", got)
	}
	if _, err := FLOPs(0, 1, 1); err == nil {
		t.Error("zero dim must fail")
	}
}

// Property: (A*B)*C == A*(B*C) — associativity exercised through all
// three implementations.
func TestPropAssociativity(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMatrix(rng, 9, 7)
		b := randomMatrix(rng, 7, 11)
		c := randomMatrix(rng, 11, 5)
		ab, err := Naive(a, b)
		if err != nil {
			return false
		}
		abc1, err := Blocked(ab, c, 4)
		if err != nil {
			return false
		}
		bc, err := Parallel(b, c, 4, 2)
		if err != nil {
			return false
		}
		abc2, err := Naive(a, bc)
		if err != nil {
			return false
		}
		return abc1.Equalish(abc2, 1e-8)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: scaling A scales the product.
func TestPropLinearity(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMatrix(rng, 6, 6)
		b := randomMatrix(rng, 6, 6)
		ab, err := Naive(a, b)
		if err != nil {
			return false
		}
		scaled := a.Clone()
		for i := range scaled.Data {
			scaled.Data[i] *= 3
		}
		sab, err := Naive(scaled, b)
		if err != nil {
			return false
		}
		for i := range ab.Data {
			d := sab.Data[i] - 3*ab.Data[i]
			if d < -1e-9 || d > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBlocked256(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x := randomMatrix(rng, 256, 256)
	y := randomMatrix(rng, 256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Blocked(x, y, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallel256(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x := randomMatrix(rng, 256, 256)
	y := randomMatrix(rng, 256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parallel(x, y, 64, 0); err != nil {
			b.Fatal(err)
		}
	}
}
