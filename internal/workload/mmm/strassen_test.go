package mmm

import (
	"math/rand"
	"testing"
)

func TestTranspose(t *testing.T) {
	m, _ := New(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	mt, err := Transpose(m)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Rows != 3 || mt.Cols != 2 {
		t.Fatalf("transpose dims %dx%d", mt.Rows, mt.Cols)
	}
	want := []float64{1, 4, 2, 5, 3, 6}
	for i, w := range want {
		if mt.Data[i] != w {
			t.Errorf("T[%d] = %g, want %g", i, mt.Data[i], w)
		}
	}
	// Double transpose is identity.
	back, _ := Transpose(mt)
	if !back.Equalish(m, 0) {
		t.Error("double transpose != identity")
	}
	if _, err := Transpose(nil); err == nil {
		t.Error("nil must fail")
	}
}

func TestNaiveTransposedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	a := randomMatrix(rng, 23, 17)
	b := randomMatrix(rng, 17, 31)
	want, err := Naive(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NaiveTransposed(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equalish(want, 1e-9) {
		t.Error("transposed product mismatch")
	}
	bad, _ := New(5, 5)
	if _, err := NaiveTransposed(a, bad); err == nil {
		t.Error("dimension mismatch must fail")
	}
}

func TestStrassenMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{2, 4, 16, 64, 128, 256} {
		a := randomMatrix(rng, n, n)
		b := randomMatrix(rng, n, n)
		want, err := Naive(a, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Strassen(a, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Strassen loses a little precision to the adds/subs.
		if !got.Equalish(want, 1e-7*float64(n)) {
			t.Errorf("n=%d: Strassen mismatch", n)
		}
	}
}

func TestStrassenValidation(t *testing.T) {
	a, _ := New(6, 6)
	b, _ := New(6, 6)
	if _, err := Strassen(a, b); err == nil {
		t.Error("non-power-of-two must fail")
	}
	c, _ := New(4, 8)
	d, _ := New(8, 4)
	if _, err := Strassen(c, d); err == nil {
		t.Error("non-square must fail")
	}
	e, _ := New(4, 4)
	f, _ := New(8, 8)
	if _, err := Strassen(e, f); err == nil {
		t.Error("dimension mismatch must fail")
	}
}

func TestStrassenFLOPs(t *testing.T) {
	// At or below the threshold, classical cost.
	got, err := StrassenFLOPs(64)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2*64*64*64 {
		t.Errorf("FLOPs(64) = %g", got)
	}
	// One recursion level: 7 multiplications of half size.
	got, _ = StrassenFLOPs(128)
	if want := 7 * 2 * 64.0 * 64 * 64; got != want {
		t.Errorf("FLOPs(128) = %g, want %g", got, want)
	}
	// Strassen beats classical asymptotically.
	classical := 2 * 1024.0 * 1024 * 1024
	s, _ := StrassenFLOPs(1024)
	if s >= classical {
		t.Errorf("Strassen %g should beat classical %g at n=1024", s, classical)
	}
	if _, err := StrassenFLOPs(100); err == nil {
		t.Error("non-pow2 must fail")
	}
}

func BenchmarkStrassen256(b *testing.B) {
	rng := rand.New(rand.NewSource(32))
	x := randomMatrix(rng, 256, 256)
	y := randomMatrix(rng, 256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Strassen(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNaiveTransposed256(b *testing.B) {
	rng := rand.New(rand.NewSource(33))
	x := randomMatrix(rng, 256, 256)
	y := randomMatrix(rng, 256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NaiveTransposed(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
