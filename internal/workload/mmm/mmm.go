// Package mmm implements the dense matrix-matrix multiplication kernel
// (SGEMM-style, single precision in the paper; float64 here for test
// robustness): a naive triple loop, a cache-blocked variant matching the
// paper's footnote-3 blocking model, and a parallel blocked variant. The
// 2 N^3 FLOP accounting and the blocked compulsory-traffic model are what
// feed the heterosim performance model.
package mmm

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New allocates a zeroed Rows x Cols matrix.
func New(rows, cols int) (*Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("mmm: invalid dimensions %dx%d", rows, cols)
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{Rows: m.Rows, Cols: m.Cols, Data: make([]float64, len(m.Data))}
	copy(out.Data, m.Data)
	return out
}

// Equalish reports whether m and other agree element-wise within tol.
func (m *Matrix) Equalish(other *Matrix, tol float64) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		d := v - other.Data[i]
		if d < -tol || d > tol {
			return false
		}
	}
	return true
}

func checkDims(a, b *Matrix) error {
	if a == nil || b == nil {
		return errors.New("mmm: nil matrix")
	}
	if a.Cols != b.Rows {
		return fmt.Errorf("mmm: dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	return nil
}

// Naive computes C = A*B with the textbook i-k-j loop order (k hoisted
// for locality).
func Naive(a, b *Matrix) (*Matrix, error) {
	if err := checkDims(a, b); err != nil {
		return nil, err
	}
	c, err := New(a.Rows, b.Cols)
	if err != nil {
		return nil, err
	}
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			av := a.Data[i*a.Cols+k]
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			crow := c.Data[i*c.Cols : (i+1)*c.Cols]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c, nil
}

// Blocked computes C = A*B with square blocking at size block, the
// structure the paper's compulsory-bandwidth footnote assumes.
func Blocked(a, b *Matrix, block int) (*Matrix, error) {
	if err := checkDims(a, b); err != nil {
		return nil, err
	}
	if block <= 0 {
		return nil, fmt.Errorf("mmm: block size %d must be positive", block)
	}
	c, err := New(a.Rows, b.Cols)
	if err != nil {
		return nil, err
	}
	for ii := 0; ii < a.Rows; ii += block {
		iMax := min(ii+block, a.Rows)
		for kk := 0; kk < a.Cols; kk += block {
			kMax := min(kk+block, a.Cols)
			for jj := 0; jj < b.Cols; jj += block {
				jMax := min(jj+block, b.Cols)
				multiplyBlock(a, b, c, ii, iMax, kk, kMax, jj, jMax)
			}
		}
	}
	return c, nil
}

func multiplyBlock(a, b, c *Matrix, ii, iMax, kk, kMax, jj, jMax int) {
	for i := ii; i < iMax; i++ {
		for k := kk; k < kMax; k++ {
			av := a.Data[i*a.Cols+k]
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols:]
			crow := c.Data[i*c.Cols:]
			for j := jj; j < jMax; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
}

// Parallel computes C = A*B with row-band parallelism across workers
// goroutines (0 means GOMAXPROCS) and blocking at size block within each
// band. This is the "throughput-driven, many independent inputs" shape
// the paper assumes for compute-bound measurement.
func Parallel(a, b *Matrix, block, workers int) (*Matrix, error) {
	if err := checkDims(a, b); err != nil {
		return nil, err
	}
	if block <= 0 {
		return nil, fmt.Errorf("mmm: block size %d must be positive", block)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	c, err := New(a.Rows, b.Cols)
	if err != nil {
		return nil, err
	}
	var wg sync.WaitGroup
	band := (a.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * band
		hi := min(lo+band, a.Rows)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for ii := lo; ii < hi; ii += block {
				iMax := min(ii+block, hi)
				for kk := 0; kk < a.Cols; kk += block {
					kMax := min(kk+block, a.Cols)
					for jj := 0; jj < b.Cols; jj += block {
						jMax := min(jj+block, b.Cols)
						multiplyBlock(a, b, c, ii, iMax, kk, kMax, jj, jMax)
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return c, nil
}

// FLOPs returns the nominal operation count of an m x k x n
// multiplication: 2 m k n.
func FLOPs(m, k, n int) (float64, error) {
	if m <= 0 || k <= 0 || n <= 0 {
		return 0, errors.New("mmm: dimensions must be positive")
	}
	return 2 * float64(m) * float64(k) * float64(n), nil
}

// Identity returns the n x n identity matrix.
func Identity(n int) (*Matrix, error) {
	m, err := New(n, n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m, nil
}
