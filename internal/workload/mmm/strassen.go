package mmm

import (
	"errors"
	"fmt"
)

// Transpose returns the transpose of m.
func Transpose(m *Matrix) (*Matrix, error) {
	if m == nil {
		return nil, errors.New("mmm: nil matrix")
	}
	out, err := New(m.Cols, m.Rows)
	if err != nil {
		return nil, err
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out, nil
}

// NaiveTransposed computes C = A*B after transposing B, turning the inner
// product into two unit-stride streams — the classic cache optimization
// tuned BLAS kernels build on.
func NaiveTransposed(a, b *Matrix) (*Matrix, error) {
	if err := checkDims(a, b); err != nil {
		return nil, err
	}
	bt, err := Transpose(b)
	if err != nil {
		return nil, err
	}
	c, err := New(a.Rows, b.Cols)
	if err != nil {
		return nil, err
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j := 0; j < bt.Rows; j++ {
			brow := bt.Data[j*bt.Cols : (j+1)*bt.Cols]
			var sum float64
			for k := range arow {
				sum += arow[k] * brow[k]
			}
			c.Data[i*c.Cols+j] = sum
		}
	}
	return c, nil
}

// StrassenThreshold is the dimension below which Strassen falls back to
// the blocked kernel (recursion overhead dominates under it).
const StrassenThreshold = 64

// Strassen computes C = A*B for square power-of-two matrices using
// Strassen's seven-multiplication recursion. It exists as a third
// independent implementation for cross-checking and as the
// asymptotically-faster baseline an ASIC MMM core would be compared
// against in a fuller study.
func Strassen(a, b *Matrix) (*Matrix, error) {
	if err := checkDims(a, b); err != nil {
		return nil, err
	}
	n := a.Rows
	if a.Cols != n || b.Rows != n || b.Cols != n {
		return nil, errors.New("mmm: Strassen requires square matrices")
	}
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("mmm: Strassen requires power-of-two size, got %d", n)
	}
	return strassen(a, b)
}

func strassen(a, b *Matrix) (*Matrix, error) {
	n := a.Rows
	if n <= StrassenThreshold {
		return Blocked(a, b, 32)
	}
	h := n / 2
	a11, a12, a21, a22 := quarter(a, h)
	b11, b12, b21, b22 := quarter(b, h)

	// The seven Strassen products.
	m1, err := strassen(add(a11, a22), add(b11, b22))
	if err != nil {
		return nil, err
	}
	m2, err := strassen(add(a21, a22), b11)
	if err != nil {
		return nil, err
	}
	m3, err := strassen(a11, sub(b12, b22))
	if err != nil {
		return nil, err
	}
	m4, err := strassen(a22, sub(b21, b11))
	if err != nil {
		return nil, err
	}
	m5, err := strassen(add(a11, a12), b22)
	if err != nil {
		return nil, err
	}
	m6, err := strassen(sub(a21, a11), add(b11, b12))
	if err != nil {
		return nil, err
	}
	m7, err := strassen(sub(a12, a22), add(b21, b22))
	if err != nil {
		return nil, err
	}

	c11 := add(sub(add(m1, m4), m5), m7)
	c12 := add(m3, m5)
	c21 := add(m2, m4)
	c22 := add(add(sub(m1, m2), m3), m6)

	c, err := New(n, n)
	if err != nil {
		return nil, err
	}
	paste(c, c11, 0, 0)
	paste(c, c12, 0, h)
	paste(c, c21, h, 0)
	paste(c, c22, h, h)
	return c, nil
}

// quarter splits a square matrix into its four h x h quadrants (copies).
func quarter(m *Matrix, h int) (q11, q12, q21, q22 *Matrix) {
	q11 = extract(m, 0, 0, h)
	q12 = extract(m, 0, h, h)
	q21 = extract(m, h, 0, h)
	q22 = extract(m, h, h, h)
	return
}

func extract(m *Matrix, r0, c0, h int) *Matrix {
	out, _ := New(h, h)
	for i := 0; i < h; i++ {
		copy(out.Data[i*h:(i+1)*h], m.Data[(r0+i)*m.Cols+c0:(r0+i)*m.Cols+c0+h])
	}
	return out
}

func paste(dst, src *Matrix, r0, c0 int) {
	h := src.Rows
	for i := 0; i < h; i++ {
		copy(dst.Data[(r0+i)*dst.Cols+c0:(r0+i)*dst.Cols+c0+h], src.Data[i*h:(i+1)*h])
	}
}

func add(a, b *Matrix) *Matrix {
	out, _ := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

func sub(a, b *Matrix) *Matrix {
	out, _ := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// StrassenFLOPs returns the asymptotic multiplication count of Strassen's
// recursion down to the threshold: 7^d multiplications of size n/2^d,
// versus 2n^3 for the classical algorithm — the kind of algorithmic
// leverage the paper's fixed 2N^3 accounting deliberately ignores.
func StrassenFLOPs(n int) (float64, error) {
	if n <= 0 || n&(n-1) != 0 {
		return 0, fmt.Errorf("mmm: need power-of-two size, got %d", n)
	}
	mults := 1.0
	size := n
	for size > StrassenThreshold {
		mults *= 7
		size /= 2
	}
	base := 2 * float64(size) * float64(size) * float64(size)
	return mults * base, nil
}
