// Package sched stress-tests the model's idealized scheduling assumption.
// The paper assumes parallel work is "uniform, infinitely divisible, and
// perfectly scheduled": parallel throughput is exactly mu x (n - r). Real
// parallel sections are finite task lists placed by a scheduler onto
// discrete workers. This package implements a discrete-event list
// scheduler over heterogeneous workers and quantifies how close real
// schedules come to the model's fluid ideal — and where (coarse tasks,
// heavy-tailed work) the assumption breaks.
package sched

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Task is one indivisible unit of parallel work, measured in BCE-seconds
// (the time one BCE core needs to execute it).
type Task struct {
	ID   int
	Work float64
}

// Worker is one execution lane with a speed relative to a BCE (a U-core
// lane has speed mu; a BCE core speed 1).
type Worker struct {
	ID    int
	Speed float64
}

// Uniform returns n workers of the given speed.
func Uniform(n int, speed float64) ([]Worker, error) {
	if n <= 0 {
		return nil, errors.New("sched: need at least one worker")
	}
	if speed <= 0 || math.IsNaN(speed) {
		return nil, errors.New("sched: speed must be positive")
	}
	ws := make([]Worker, n)
	for i := range ws {
		ws[i] = Worker{ID: i, Speed: speed}
	}
	return ws, nil
}

// TotalWork sums the task works.
func TotalWork(tasks []Task) float64 {
	var s float64
	for _, t := range tasks {
		s += t.Work
	}
	return s
}

// IdealMakespan is the fluid lower bound the paper's model assumes:
// total work divided by total speed, floored by the time the fastest
// worker needs for the largest single task.
func IdealMakespan(tasks []Task, workers []Worker) (float64, error) {
	if len(tasks) == 0 {
		return 0, errors.New("sched: no tasks")
	}
	if len(workers) == 0 {
		return 0, errors.New("sched: no workers")
	}
	var speed float64
	maxSpeed := 0.0
	for _, w := range workers {
		if w.Speed <= 0 || math.IsNaN(w.Speed) {
			return 0, fmt.Errorf("sched: worker %d has invalid speed", w.ID)
		}
		speed += w.Speed
		if w.Speed > maxSpeed {
			maxSpeed = w.Speed
		}
	}
	var maxTask float64
	for _, t := range tasks {
		if t.Work <= 0 || math.IsNaN(t.Work) {
			return 0, fmt.Errorf("sched: task %d has invalid work", t.ID)
		}
		if t.Work > maxTask {
			maxTask = t.Work
		}
	}
	fluid := TotalWork(tasks) / speed
	floor := maxTask / maxSpeed
	return math.Max(fluid, floor), nil
}

// workerState tracks when a worker becomes free.
type workerState struct {
	free  float64
	speed float64
	id    int
}

// Schedule is the result of a simulated placement.
type Schedule struct {
	Makespan   float64
	Ideal      float64
	Efficiency float64 // Ideal / Makespan, in (0, 1]
	PerWorker  []float64
}

// LPT runs the longest-processing-time list scheduler: tasks sorted by
// decreasing work, each assigned to the worker that will finish it
// earliest. This is the classic 4/3-approximation on identical machines
// and a strong heuristic on uniform (speed-scaled) machines.
func LPT(tasks []Task, workers []Worker) (Schedule, error) {
	ideal, err := IdealMakespan(tasks, workers)
	if err != nil {
		return Schedule{}, err
	}
	sorted := make([]Task, len(tasks))
	copy(sorted, tasks)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Work > sorted[j].Work })
	return listSchedule(sorted, workers, ideal)
}

// FCFS runs the first-come-first-served list scheduler (arrival order) —
// the weaker baseline that shows why task order matters.
func FCFS(tasks []Task, workers []Worker) (Schedule, error) {
	ideal, err := IdealMakespan(tasks, workers)
	if err != nil {
		return Schedule{}, err
	}
	return listSchedule(tasks, workers, ideal)
}

// listSchedule greedily places each task on the worker that finishes it
// earliest (earliest-finish-time rule on uniform machines). The linear
// scan per task is O(tasks x workers) — ample for analysis-scale inputs
// and exact for heterogeneous speeds, where a free-time heap alone picks
// the wrong worker.
func listSchedule(tasks []Task, workers []Worker, ideal float64) (Schedule, error) {
	states := make([]workerState, len(workers))
	for i, w := range workers {
		states[i] = workerState{free: 0, speed: w.Speed, id: w.ID}
	}
	busy := make([]float64, len(workers))
	for _, t := range tasks {
		best := 0
		bestFinish := math.Inf(1)
		for i := range states {
			finish := states[i].free + t.Work/states[i].speed
			if finish < bestFinish {
				bestFinish = finish
				best = i
			}
		}
		states[best].free = bestFinish
		busy[states[best].id] += t.Work / states[best].speed
	}
	makespan := 0.0
	for _, ws := range states {
		if ws.free > makespan {
			makespan = ws.free
		}
	}
	eff := ideal / makespan
	if eff > 1 {
		eff = 1
	}
	return Schedule{Makespan: makespan, Ideal: ideal, Efficiency: eff, PerWorker: busy}, nil
}

// UniformTasks generates count tasks of identical work.
func UniformTasks(count int, work float64) ([]Task, error) {
	if count <= 0 || work <= 0 {
		return nil, errors.New("sched: count and work must be positive")
	}
	ts := make([]Task, count)
	for i := range ts {
		ts[i] = Task{ID: i, Work: work}
	}
	return ts, nil
}

// HeavyTailedTasks generates count tasks with exponentially distributed
// work around mean (a crude stand-in for skewed kernels), deterministic
// per seed.
func HeavyTailedTasks(count int, mean float64, seed int64) ([]Task, error) {
	if count <= 0 || mean <= 0 {
		return nil, errors.New("sched: count and mean must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	ts := make([]Task, count)
	for i := range ts {
		w := rng.ExpFloat64() * mean
		if w < mean/100 {
			w = mean / 100
		}
		ts[i] = Task{ID: i, Work: w}
	}
	return ts, nil
}

// ModelError quantifies the idealized-scheduling assumption for one
// parallel section: the fraction of the paper's predicted parallel
// throughput that an LPT schedule of the given tasks on (n - r) U-core
// lanes of speed mu fails to deliver. Unlike Schedule.Ideal, the
// reference here is the *pure fluid* makespan total/(lanes x mu) — the
// paper's model has no max-task floor, so a single indivisible long task
// counts as model error, not as an adjusted ideal.
func ModelError(tasks []Task, lanes int, mu float64) (float64, error) {
	workers, err := Uniform(lanes, mu)
	if err != nil {
		return 0, err
	}
	s, err := LPT(tasks, workers)
	if err != nil {
		return 0, err
	}
	fluid := TotalWork(tasks) / (float64(lanes) * mu)
	if fluid <= 0 {
		return 0, errors.New("sched: no work")
	}
	return 1 - fluid/s.Makespan, nil
}
