package sched

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUniformWorkers(t *testing.T) {
	ws, err := Uniform(4, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 4 || ws[3].Speed != 2.5 || ws[3].ID != 3 {
		t.Errorf("workers = %+v", ws)
	}
	if _, err := Uniform(0, 1); err == nil {
		t.Error("zero workers must fail")
	}
	if _, err := Uniform(2, 0); err == nil {
		t.Error("zero speed must fail")
	}
}

func TestIdealMakespan(t *testing.T) {
	tasks, _ := UniformTasks(8, 1)
	ws, _ := Uniform(4, 1)
	ideal, err := IdealMakespan(tasks, ws)
	if err != nil {
		t.Fatal(err)
	}
	if ideal != 2 {
		t.Errorf("ideal = %g, want 2", ideal)
	}
	// A single huge task floors the ideal at work/maxSpeed.
	tasks = append(tasks, Task{ID: 99, Work: 100})
	ideal, _ = IdealMakespan(tasks, ws)
	if ideal != 100 {
		t.Errorf("ideal with giant task = %g, want 100", ideal)
	}
	if _, err := IdealMakespan(nil, ws); err == nil {
		t.Error("no tasks must fail")
	}
	if _, err := IdealMakespan(tasks, nil); err == nil {
		t.Error("no workers must fail")
	}
	bad := []Task{{ID: 0, Work: -1}}
	if _, err := IdealMakespan(bad, ws); err == nil {
		t.Error("negative work must fail")
	}
}

func TestPerfectlyDivisibleWorkReachesIdeal(t *testing.T) {
	// Many identical fine-grained tasks on identical workers: LPT hits
	// the fluid ideal exactly — the regime where the paper's assumption
	// is exact.
	tasks, _ := UniformTasks(64, 1)
	ws, _ := Uniform(8, 1)
	s, err := LPT(tasks, ws)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Efficiency-1) > 1e-12 {
		t.Errorf("efficiency = %g, want 1", s.Efficiency)
	}
	if s.Makespan != 8 {
		t.Errorf("makespan = %g, want 8", s.Makespan)
	}
}

func TestCoarseTasksBreakTheAssumption(t *testing.T) {
	// 5 unit tasks on 4 workers: ideal 1.25, real 2 (one worker does
	// two) — a 37.5% loss the fluid model cannot see.
	tasks, _ := UniformTasks(5, 1)
	ws, _ := Uniform(4, 1)
	s, err := LPT(tasks, ws)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 2 {
		t.Errorf("makespan = %g, want 2", s.Makespan)
	}
	if math.Abs(s.Efficiency-0.625) > 1e-12 {
		t.Errorf("efficiency = %g, want 0.625", s.Efficiency)
	}
}

func TestLPTBeatsFCFSOnAdversarialOrder(t *testing.T) {
	// Small tasks first, then a giant one: FCFS parks the giant task on
	// a busy worker's tail; LPT schedules it first.
	tasks := []Task{
		{0, 1}, {1, 1}, {2, 1}, {3, 1}, {4, 4},
	}
	ws, _ := Uniform(2, 1)
	lpt, err := LPT(tasks, ws)
	if err != nil {
		t.Fatal(err)
	}
	fcfs, err := FCFS(tasks, ws)
	if err != nil {
		t.Fatal(err)
	}
	if lpt.Makespan > fcfs.Makespan {
		t.Errorf("LPT %g should not lose to FCFS %g", lpt.Makespan, fcfs.Makespan)
	}
	if lpt.Makespan != 4 {
		t.Errorf("LPT makespan = %g, want 4 (giant on its own worker)", lpt.Makespan)
	}
}

func TestHeterogeneousWorkersPreferFastLane(t *testing.T) {
	// One task, two workers (speed 1 and 10): it must land on the fast one.
	tasks := []Task{{0, 10}}
	ws := []Worker{{ID: 0, Speed: 1}, {ID: 1, Speed: 10}}
	s, err := LPT(tasks, ws)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 1 {
		t.Errorf("makespan = %g, want 1 (fast lane)", s.Makespan)
	}
	if s.PerWorker[0] != 0 || s.PerWorker[1] != 1 {
		t.Errorf("per-worker = %v", s.PerWorker)
	}
}

func TestTaskGenerators(t *testing.T) {
	if _, err := UniformTasks(0, 1); err == nil {
		t.Error("zero count must fail")
	}
	if _, err := HeavyTailedTasks(5, 0, 1); err == nil {
		t.Error("zero mean must fail")
	}
	a, err := HeavyTailedTasks(100, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := HeavyTailedTasks(100, 2, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("heavy-tailed generation not deterministic")
		}
	}
	// Mean roughly right.
	if tw := TotalWork(a) / 100; tw < 1 || tw > 3.5 {
		t.Errorf("empirical mean = %g, want ~2", tw)
	}
}

// The quantified verdict on the paper's assumption: with fine-grained
// work the model error is negligible; with coarse heavy-tailed work it
// is material.
func TestModelErrorRegimes(t *testing.T) {
	fine, err := UniformTasks(10000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	errFine, err := ModelError(fine, 17, 2.88) // GTX285 FFT lanes at 40nm
	if err != nil {
		t.Fatal(err)
	}
	if errFine > 0.01 {
		t.Errorf("fine-grained model error = %g, want < 1%%", errFine)
	}
	coarse, err := HeavyTailedTasks(25, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	errCoarse, err := ModelError(coarse, 17, 2.88)
	if err != nil {
		t.Fatal(err)
	}
	if errCoarse <= errFine {
		t.Errorf("coarse error %g should exceed fine error %g", errCoarse, errFine)
	}
	if _, err := ModelError(fine, 0, 1); err == nil {
		t.Error("zero lanes must fail")
	}
}

// Property: Graham's list-scheduling guarantee on identical machines —
// any list schedule satisfies makespan <= total/m + (1 - 1/m)·maxTask,
// which is <= ideal + maxTask. Both LPT and FCFS must respect it, and
// the makespan can never undercut the fluid ideal.
func TestPropGrahamListBound(t *testing.T) {
	prop := func(seed int64) bool {
		tasks, err := HeavyTailedTasks(40, 1, seed)
		if err != nil {
			return false
		}
		m := 6
		ws, err := Uniform(m, 1)
		if err != nil {
			return false
		}
		maxTask := 0.0
		for _, task := range tasks {
			if task.Work > maxTask {
				maxTask = task.Work
			}
		}
		bound := TotalWork(tasks)/float64(m) + (1-1/float64(m))*maxTask
		for _, run := range []func([]Task, []Worker) (Schedule, error){LPT, FCFS} {
			s, err := run(tasks, ws)
			if err != nil {
				return false
			}
			if s.Makespan < s.Ideal-1e-9 {
				return false
			}
			if s.Makespan > bound+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: efficiency is in (0, 1] and improves (weakly) as tasks are
// split finer.
func TestPropFinerTasksImproveEfficiency(t *testing.T) {
	prop := func(seed int64) bool {
		coarse, err := UniformTasks(9, 1)
		if err != nil {
			return false
		}
		fine, err := UniformTasks(9*8, 1.0/8)
		if err != nil {
			return false
		}
		ws, err := Uniform(4, 1)
		if err != nil {
			return false
		}
		sc, err1 := LPT(coarse, ws)
		sf, err2 := LPT(fine, ws)
		if err1 != nil || err2 != nil {
			return false
		}
		return sc.Efficiency > 0 && sc.Efficiency <= 1 &&
			sf.Efficiency >= sc.Efficiency-1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLPT1000x16(b *testing.B) {
	tasks, err := HeavyTailedTasks(1000, 1, 5)
	if err != nil {
		b.Fatal(err)
	}
	ws, err := Uniform(16, 2.88)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LPT(tasks, ws); err != nil {
			b.Fatal(err)
		}
	}
}
