package device

import (
	"fmt"

	"github.com/calcm/heterosim/internal/paper"
	"github.com/calcm/heterosim/internal/ucore"
)

// FFTFamily keys the size-parametric FFT model in BuildModels results;
// the size-specific Table 5 workload IDs (FFT-64 etc.) are evaluations of
// this one model at fixed sizes.
const FFTFamily paper.WorkloadID = "FFT"

// asicNativeAreaMM2 gives the synthesized 65nm core areas assumed for the
// ASIC designs. MMM and BS are recovered from Table 4 (throughput /
// per-mm² un-normalized back to 65nm); the FFT cores are Spiral-class
// streaming datapaths whose size grows with transform length.
var asicNativeAreaMM2 = map[paper.WorkloadID]float64{
	paper.FFT64:    2.0,
	paper.FFT1024:  4.0,
	paper.FFT16384: 8.0,
}

// fftEdge describes how a device's FFT throughput and power extend beyond
// the three Table 5 anchor sizes (2^6, 2^10, 2^14) to the sweep edges
// (2^4 and 2^20), as fractions of the nearest anchor value. The shapes
// follow Figure 2: GPUs are severely underutilized at tiny transforms;
// FPGAs/ASICs with dedicated pipelines degrade much less.
type fftEdge struct {
	perfLo, perfHi float64 // multiply 2^6 anchor at 2^4 / 2^14 anchor at 2^20
	powerLo        float64 // power at 2^4 relative to 2^6 anchor
}

var fftEdges = map[paper.DeviceID]fftEdge{
	paper.GTX285: {perfLo: 0.15, perfHi: 1.05, powerLo: 0.60},
	paper.GTX480: {perfLo: 0.15, perfHi: 1.05, powerLo: 0.60},
	paper.LX760:  {perfLo: 0.55, perfHi: 1.00, powerLo: 0.80},
	paper.ASIC:   {perfLo: 0.80, perfHi: 1.00, powerLo: 0.90},
}

// kindPowerShape captures the Figure 3 decomposition style per device
// kind: leakage fraction of compute power, uncore components, and the
// out-of-core traffic excess beyond the on-chip knee.
type kindPowerShape struct {
	leakFraction  float64
	uncoreStatic  float64
	uncoreDynLo   float64 // uncore dynamic watts at small inputs
	uncoreDynHi   float64 // at large inputs (more memory traffic)
	unknownW      float64
	excessTraffic float64
}

func powerShape(d Device) kindPowerShape {
	switch d.Kind {
	case CPU:
		// The EATX12V rail excludes the uncore; a small residual remains.
		return kindPowerShape{leakFraction: 0.15, unknownW: 5, excessTraffic: 1.3}
	case GPU:
		static := 25.0
		if d.ID == paper.GTX480 {
			static = 35 // Fermi's larger L2/controllers
		}
		return kindPowerShape{leakFraction: 0.12, uncoreStatic: static,
			uncoreDynLo: 15, uncoreDynHi: 45, unknownW: 8, excessTraffic: 1.6}
	case FPGA:
		return kindPowerShape{leakFraction: 0.25, uncoreStatic: 10,
			uncoreDynLo: 2, uncoreDynHi: 6, unknownW: 3, excessTraffic: 1.2}
	default: // ASIC
		return kindPowerShape{leakFraction: 0.08, excessTraffic: 1.0}
	}
}

// NativeAreaMM2 returns the compute-only silicon area, at the device's
// native node, that a workload occupies on the device: the full core/cache
// area for programmable devices (the design is scaled to fill the chip, as
// the paper did for FPGAs) and the per-design synthesized area for ASICs.
// For ASIC MMM/BS the native area is recovered from Table 4's normalized
// per-mm² metric.
func NativeAreaMM2(d Device, w paper.WorkloadID) (float64, error) {
	if d.ID != paper.ASIC {
		if d.Table2.CoreAreaMM2 <= 0 {
			return 0, fmt.Errorf("device: %s has no published core area", d.ID)
		}
		return d.Table2.CoreAreaMM2, nil
	}
	if a, ok := asicNativeAreaMM2[w]; ok {
		return a, nil
	}
	row, ok := paper.Table4[w][paper.ASIC]
	if !ok {
		return 0, fmt.Errorf("device: no ASIC area basis for workload %s", w)
	}
	a40 := row.Throughput / row.PerMM2
	s := 40.0 / float64(d.Table2.Nm)
	return a40 / (s * s), nil
}

// BuildModels constructs every (device, workload) model from published
// data. MMM and Black-Scholes models are flat curves at the Table 4
// operating point; FFT models are curves through the three Table 5 anchor
// sizes (values synthesized by inverting the paper's own mu/phi
// derivation) plus shaped edges.
func BuildModels() (map[paper.DeviceID]map[paper.WorkloadID]Model, error) {
	out := make(map[paper.DeviceID]map[paper.WorkloadID]Model)
	put := func(id paper.DeviceID, w paper.WorkloadID, m Model) {
		if out[id] == nil {
			out[id] = make(map[paper.WorkloadID]Model)
		}
		out[id][w] = m
	}

	// MMM and Black-Scholes from Table 4.
	for _, w := range []paper.WorkloadID{paper.MMM, paper.BS} {
		for id, row := range paper.Table4[w] {
			d, err := ByID(id)
			if err != nil {
				return nil, err
			}
			thr, err := Constant(row.Throughput)
			if err != nil {
				return nil, fmt.Errorf("device: %s/%s throughput: %w", id, w, err)
			}
			pw, err := Constant(row.Throughput / row.PerJoule)
			if err != nil {
				return nil, fmt.Errorf("device: %s/%s power: %w", id, w, err)
			}
			m, err := assemble(d, w, thr, pw)
			if err != nil {
				return nil, err
			}
			put(id, w, m)
		}
	}

	// FFT family models.
	for _, id := range []paper.DeviceID{paper.CoreI7, paper.GTX285, paper.GTX480, paper.LX760, paper.ASIC} {
		d, err := ByID(id)
		if err != nil {
			return nil, err
		}
		var thr, pw Curve
		if id == paper.CoreI7 {
			thr, pw, err = coreI7FFTCurves()
		} else {
			thr, pw, err = ucoreFFTCurves(d)
		}
		if err != nil {
			return nil, fmt.Errorf("device: %s FFT curves: %w", id, err)
		}
		m, err := assemble(d, FFTFamily, thr, pw)
		if err != nil {
			return nil, err
		}
		put(id, FFTFamily, m)
	}
	return out, nil
}

func assemble(d Device, w paper.WorkloadID, thr, pw Curve) (Model, error) {
	shape := powerShape(d)
	und, err := NewCurve(Point{X: 4, Y: epsilonFloor(shape.uncoreDynLo)},
		Point{X: 20, Y: epsilonFloor(shape.uncoreDynHi)})
	if err != nil {
		return Model{}, err
	}
	return Model{
		Device:              d,
		Workload:            w,
		Throughput:          thr,
		ComputeW:            pw,
		LeakFraction:        shape.leakFraction,
		UncoreStaticW:       shape.uncoreStatic,
		UncoreDynW:          und,
		UnknownW:            shape.unknownW,
		ExcessTrafficFactor: shape.excessTraffic,
	}, nil
}

// epsilonFloor keeps curves positive (NewCurve requires Y > 0) while
// representing "effectively zero" uncore components.
func epsilonFloor(w float64) float64 {
	if w <= 0 {
		return 1e-9
	}
	return w
}

// coreI7FFTCurves builds the reference CPU curves from the published
// anchor set (Figure 2/3 magnitudes) with flat core power.
func coreI7FFTCurves() (thr, pw Curve, err error) {
	pts := make([]Point, 0, len(paper.CoreI7FFTAnchors))
	for n, gf := range paper.CoreI7FFTAnchors {
		l2, err := log2Exact(n)
		if err != nil {
			return Curve{}, Curve{}, err
		}
		pts = append(pts, Point{X: float64(l2), Y: gf})
	}
	thr, err = NewCurve(pts...)
	if err != nil {
		return Curve{}, Curve{}, err
	}
	pw, err = Constant(paper.CoreI7FFTCorePowerW)
	return thr, pw, err
}

// ucoreFFTCurves synthesizes a U-core device's FFT throughput and compute
// power curves by inverting the Table 5 parameters at the three anchor
// sizes against the per-size BCE references, then extending the edges.
func ucoreFFTCurves(d Device) (thr, pw Curve, err error) {
	anchors := []struct {
		w  paper.WorkloadID
		l2 float64
	}{
		{paper.FFT64, 6},
		{paper.FFT1024, 10},
		{paper.FFT16384, 14},
	}
	var tPts, pPts []Point
	for _, a := range anchors {
		params, ok := ucore.PublishedParams(d.ID, a.w)
		if !ok {
			return Curve{}, Curve{}, fmt.Errorf("no published params for %s/%s", d.ID, a.w)
		}
		ref, err := ucore.DefaultBCE(a.w)
		if err != nil {
			return Curve{}, Curve{}, err
		}
		area := d.Table2.CoreAreaMM2
		if d.ID == paper.ASIC {
			area = asicNativeAreaMM2[a.w]
		}
		t, p, err := ucore.Invert(ucore.Params(params), area, d.Table2.Nm, ref)
		if err != nil {
			return Curve{}, Curve{}, err
		}
		tPts = append(tPts, Point{X: a.l2, Y: t})
		pPts = append(pPts, Point{X: a.l2, Y: p})
	}
	edge, ok := fftEdges[d.ID]
	if !ok {
		return Curve{}, Curve{}, fmt.Errorf("no FFT edge shape for %s", d.ID)
	}
	tPts = append(tPts,
		Point{X: 4, Y: tPts[0].Y * edge.perfLo},
		Point{X: 20, Y: tPts[2].Y * edge.perfHi})
	pPts = append(pPts,
		Point{X: 4, Y: pPts[0].Y * edge.powerLo},
		Point{X: 20, Y: pPts[2].Y})
	thr, err = NewCurve(tPts...)
	if err != nil {
		return Curve{}, Curve{}, err
	}
	pw, err = NewCurve(pPts...)
	return thr, pw, err
}

func log2Exact(n int) (int, error) {
	if n < 2 || n&(n-1) != 0 {
		return 0, fmt.Errorf("device: %d is not a power of two", n)
	}
	l := 0
	for v := n; v > 1; v >>= 1 {
		l++
	}
	return l, nil
}
