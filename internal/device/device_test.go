package device

import (
	"math"
	"testing"

	"github.com/calcm/heterosim/internal/paper"
	"github.com/calcm/heterosim/internal/ucore"
)

func TestCatalogCoversTable2(t *testing.T) {
	cat := Catalog()
	if len(cat) != len(paper.AllDevices) {
		t.Fatalf("catalog has %d devices, want %d", len(cat), len(paper.AllDevices))
	}
	for i, d := range cat {
		if d.ID != paper.AllDevices[i] {
			t.Errorf("catalog[%d] = %s, want %s", i, d.ID, paper.AllDevices[i])
		}
		if d.Table2.ID != d.ID {
			t.Errorf("%s: Table2 data mismatch", d.ID)
		}
	}
}

func TestOnChipKneeDerivation(t *testing.T) {
	// 64 KB / 16 B per point = 4096 points -> knee at log2 N = 12, the
	// size where Figure 4's GTX285 bandwidth leaves compulsory.
	gtx, err := ByID(paper.GTX285)
	if err != nil {
		t.Fatal(err)
	}
	if got := gtx.OnChipKneeLog2N(); got != 12 {
		t.Errorf("GTX285 knee = %d, want 12", got)
	}
	// 256 KB -> 2^14 points for the FPGA/ASIC; 1 MB -> 2^16 for the i7.
	for id, want := range map[paper.DeviceID]int{
		paper.LX760: 14, paper.ASIC: 14, paper.CoreI7: 16,
	} {
		d, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := d.OnChipKneeLog2N(); got != want {
			t.Errorf("%s knee = %d, want %d", id, got, want)
		}
	}
	// No capacity recorded -> no knee.
	if (Device{}).OnChipKneeLog2N() != 0 {
		t.Error("zero capacity should have no knee")
	}
}

func TestByID(t *testing.T) {
	d, err := ByID(paper.GTX480)
	if err != nil || d.Kind != GPU || d.Table2.Nm != 40 {
		t.Errorf("ByID(GTX480) = %+v, %v", d, err)
	}
	if _, err := ByID("TPUv4"); err == nil {
		t.Error("unknown device must fail")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{CPU: "CPU", GPU: "GPU", FPGA: "FPGA", ASIC: "ASIC"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should still print")
	}
}

func TestCurveInterpolation(t *testing.T) {
	c, err := NewCurve(Point{4, 10}, Point{8, 30}, Point{6, 20})
	if err != nil {
		t.Fatal(err)
	}
	// Sorted internally; exact hits.
	for x, want := range map[float64]float64{4: 10, 6: 20, 8: 30} {
		if got := c.At(x); got != want {
			t.Errorf("At(%g) = %g, want %g", x, got, want)
		}
	}
	// Interpolation.
	if got := c.At(5); got != 15 {
		t.Errorf("At(5) = %g, want 15", got)
	}
	if got := c.At(7); got != 25 {
		t.Errorf("At(7) = %g, want 25", got)
	}
	// Clamped extrapolation.
	if got := c.At(0); got != 10 {
		t.Errorf("At(0) = %g, want 10", got)
	}
	if got := c.At(99); got != 30 {
		t.Errorf("At(99) = %g, want 30", got)
	}
}

func TestCurveValidation(t *testing.T) {
	if _, err := NewCurve(); err == nil {
		t.Error("empty curve must fail")
	}
	if _, err := NewCurve(Point{1, 0}); err == nil {
		t.Error("zero Y must fail")
	}
	if _, err := NewCurve(Point{1, 1}, Point{1, 2}); err == nil {
		t.Error("duplicate X must fail")
	}
	if _, err := NewCurve(Point{math.NaN(), 1}); err == nil {
		t.Error("NaN X must fail")
	}
}

func TestConstantCurve(t *testing.T) {
	c, err := Constant(42)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-10, 0, 5, 1000} {
		if c.At(x) != 42 {
			t.Errorf("Constant.At(%g) = %g", x, c.At(x))
		}
	}
}

func TestCurvePointsCopy(t *testing.T) {
	c, _ := NewCurve(Point{1, 2}, Point{3, 4})
	pts := c.Points()
	pts[0].Y = 999
	if c.At(1) != 2 {
		t.Error("Points() leaked internal storage")
	}
}

func TestPowerBreakdownTotals(t *testing.T) {
	p := PowerBreakdown{CoreDynamic: 50, CoreLeakage: 10, UncoreStatic: 20, UncoreDynamic: 15, Unknown: 5}
	if p.Total() != 100 {
		t.Errorf("Total = %g", p.Total())
	}
	if p.Compute() != 60 {
		t.Errorf("Compute = %g", p.Compute())
	}
}

func TestBuildModelsCoverage(t *testing.T) {
	models, err := BuildModels()
	if err != nil {
		t.Fatal(err)
	}
	// Every Table 4 cell has a model.
	for _, w := range []paper.WorkloadID{paper.MMM, paper.BS} {
		for id := range paper.Table4[w] {
			if _, ok := models[id][w]; !ok {
				t.Errorf("missing model %s/%s", id, w)
			}
		}
	}
	// FFT family on the five FFT-measured devices.
	for _, id := range []paper.DeviceID{paper.CoreI7, paper.GTX285, paper.GTX480, paper.LX760, paper.ASIC} {
		if _, ok := models[id][FFTFamily]; !ok {
			t.Errorf("missing FFT model for %s", id)
		}
	}
	// R5870 has no FFT model (paper could not obtain one).
	if _, ok := models[paper.R5870][FFTFamily]; ok {
		t.Error("R5870 should have no FFT model")
	}
}

func TestModelsReproduceTable4(t *testing.T) {
	models, err := BuildModels()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []paper.WorkloadID{paper.MMM, paper.BS} {
		for id, row := range paper.Table4[w] {
			m := models[id][w]
			if got := m.ThroughputAt(1024); math.Abs(got/row.Throughput-1) > 1e-9 {
				t.Errorf("%s/%s throughput = %g, want %g", id, w, got, row.Throughput)
			}
			wantW := row.Throughput / row.PerJoule
			if got := m.ComputePowerAt(1024); math.Abs(got/wantW-1) > 1e-9 {
				t.Errorf("%s/%s power = %g, want %g", id, w, got, wantW)
			}
		}
	}
}

// The FFT model anchors must round-trip through the mu/phi derivation to
// the published Table 5 values — the central calibration guarantee.
func TestFFTModelsRoundTripToTable5(t *testing.T) {
	models, err := BuildModels()
	if err != nil {
		t.Fatal(err)
	}
	anchors := map[paper.WorkloadID]int{paper.FFT64: 64, paper.FFT1024: 1024, paper.FFT16384: 16384}
	for _, id := range []paper.DeviceID{paper.GTX285, paper.GTX480, paper.LX760, paper.ASIC} {
		m := models[id][FFTFamily]
		for w, n := range anchors {
			want, ok := ucore.PublishedParams(id, w)
			if !ok {
				t.Fatalf("no published params %s/%s", id, w)
			}
			ref, err := ucore.DefaultBCE(w)
			if err != nil {
				t.Fatal(err)
			}
			area := m.Device.Table2.CoreAreaMM2
			if id == paper.ASIC {
				area = asicNativeAreaMM2[w]
			}
			meas := ucore.Measurement{
				Device: id, Workload: w,
				Throughput: m.ThroughputAt(n),
				AreaMM2:    area,
				Nm:         m.Device.Table2.Nm,
				PowerW:     m.ComputePowerAt(n),
			}
			got, err := ucore.Derive(meas, ref)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got.Mu/want.Mu-1) > 1e-6 || math.Abs(got.Phi/want.Phi-1) > 1e-6 {
				t.Errorf("%s/%s: derived (%.4f, %.4f), published (%.4f, %.4f)",
					id, w, got.Mu, got.Phi, want.Mu, want.Phi)
			}
		}
	}
}

func TestFFTModelShapes(t *testing.T) {
	models, err := BuildModels()
	if err != nil {
		t.Fatal(err)
	}
	// GPUs severely underutilized at tiny transforms.
	gtx := models[paper.GTX285][FFTFamily]
	if r := gtx.ThroughputAt(16) / gtx.ThroughputAt(64); r > 0.5 {
		t.Errorf("GTX285 at N=16 should be well below N=64 (ratio %g)", r)
	}
	// ASIC area-normalized efficiency dwarfs the CPU (paper: ~1000x over
	// i7, ~100x over flexible devices in GFLOP/s/mm²).
	asic := models[paper.ASIC][FFTFamily]
	i7 := models[paper.CoreI7][FFTFamily]
	asicPerMM2 := asic.ThroughputAt(1024) / 1.51 // 4 mm² at 65nm -> 1.51 normalized
	i7PerMM2 := i7.ThroughputAt(1024) / 193
	if ratio := asicPerMM2 / i7PerMM2; ratio < 300 || ratio > 3000 {
		t.Errorf("ASIC/i7 area-normalized ratio = %g, want ~1000x ballpark", ratio)
	}
}

func TestBreakdownAt(t *testing.T) {
	models, err := BuildModels()
	if err != nil {
		t.Fatal(err)
	}
	m := models[paper.GTX285][FFTFamily]
	b := m.BreakdownAt(1024)
	if math.Abs(b.Compute()-m.ComputePowerAt(1024)) > 1e-9 {
		t.Error("breakdown compute must equal model compute power")
	}
	if b.UncoreStatic != 25 {
		t.Errorf("GTX285 uncore static = %g, want 25", b.UncoreStatic)
	}
	if b.CoreLeakage <= 0 || b.CoreDynamic <= 0 {
		t.Error("leakage split must be positive")
	}
	// Uncore dynamic grows with input size (more memory traffic).
	if m.BreakdownAt(1<<20).UncoreDynamic <= m.BreakdownAt(16).UncoreDynamic {
		t.Error("uncore dynamic should grow with N")
	}
	// ASIC has essentially no uncore.
	ab := models[paper.ASIC][FFTFamily].BreakdownAt(1024)
	if ab.UncoreStatic != 0 || ab.Unknown != 0 {
		t.Errorf("ASIC uncore should be zero: %+v", ab)
	}
}

func TestEfficiencyAt(t *testing.T) {
	models, _ := BuildModels()
	m := models[paper.LX760][FFTFamily]
	e := m.EfficiencyAt(1024)
	want := m.ThroughputAt(1024) / m.ComputePowerAt(1024)
	if math.Abs(e-want) > 1e-12 {
		t.Errorf("EfficiencyAt = %g, want %g", e, want)
	}
}
