// Package device provides the catalog of measured platforms (Table 2 of
// the paper) and per-device analytic performance/power models. The models
// replace the paper's physical hardware: each is a set of anchored curves
// over input size whose values are constructed so that the downstream
// measurement pipeline reproduces the published Table 4 and Table 5
// numbers exactly (see DESIGN.md, substitution table).
package device

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/calcm/heterosim/internal/paper"
)

// Kind classifies a device's computing paradigm.
type Kind int

const (
	// CPU is a conventional multicore microprocessor.
	CPU Kind = iota
	// GPU is a programmable SIMD accelerator.
	GPU
	// FPGA is a reconfigurable lookup-table fabric.
	FPGA
	// ASIC is fixed-function custom logic.
	ASIC
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case CPU:
		return "CPU"
	case GPU:
		return "GPU"
	case FPGA:
		return "FPGA"
	case ASIC:
		return "ASIC"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Device is one catalog entry: the published Table 2 data plus the
// simulator-specific attributes the paper's text implies.
type Device struct {
	ID     paper.DeviceID
	Kind   Kind
	Table2 paper.Table2Device

	// OnChipKB is the on-chip working memory available to one streaming
	// kernel instance (shared memory/registers on GPUs, block RAM on the
	// FPGA, caches on the CPU, dedicated SRAM on the ASIC). The FFT
	// bandwidth knee of Figure 4 falls where the 16-byte-per-point
	// working set exceeds it.
	OnChipKB float64

	// PeakBandwidthGBs is the device's off-chip ceiling (0 if unknown).
	PeakBandwidthGBs float64
}

// FFTBytesPerPoint is the resident working-set cost of one transform
// point (complex single precision in and out, per the paper's footnote-2
// traffic accounting).
const FFTBytesPerPoint = 16

// OnChipKneeLog2N returns the largest log2 transform size whose working
// set still fits on chip: the size at which Figure 4's measured
// bandwidth departs from compulsory. Zero means no knee (no capacity
// recorded).
func (d Device) OnChipKneeLog2N() int {
	if d.OnChipKB <= 0 {
		return 0
	}
	points := d.OnChipKB * 1024 / FFTBytesPerPoint
	knee := 0
	for v := 1.0; v*2 <= points; v *= 2 {
		knee++
	}
	return knee
}

// Catalog returns the six studied devices in the paper's column order.
// On-chip capacities are chosen to reproduce the knees the paper
// observes: the GTX285's measured bandwidth leaves compulsory at N=2^12
// (64 KB of shared memory per transform), Fermi-class GPUs are modeled
// alike, the FPGA's block RAM and the ASIC's dedicated SRAM hold 2^14
// points, and the i7's caches hold 2^16.
func Catalog() []Device {
	return []Device{
		{ID: paper.CoreI7, Kind: CPU, Table2: paper.Table2[paper.CoreI7],
			OnChipKB: 1024, PeakBandwidthGBs: 32},
		{ID: paper.GTX285, Kind: GPU, Table2: paper.Table2[paper.GTX285],
			OnChipKB: 64, PeakBandwidthGBs: 159},
		{ID: paper.GTX480, Kind: GPU, Table2: paper.Table2[paper.GTX480],
			OnChipKB: 64, PeakBandwidthGBs: 177.4},
		{ID: paper.R5870, Kind: GPU, Table2: paper.Table2[paper.R5870],
			OnChipKB: 64, PeakBandwidthGBs: 153.6},
		{ID: paper.LX760, Kind: FPGA, Table2: paper.Table2[paper.LX760],
			OnChipKB: 256, PeakBandwidthGBs: 0},
		{ID: paper.ASIC, Kind: ASIC, Table2: paper.Table2[paper.ASIC],
			OnChipKB: 256, PeakBandwidthGBs: 0},
	}
}

// ByID returns the catalog entry for id.
func ByID(id paper.DeviceID) (Device, error) {
	for _, d := range Catalog() {
		if d.ID == id {
			return d, nil
		}
	}
	return Device{}, fmt.Errorf("device: unknown device %q", id)
}

// Point is one (x, y) anchor of a Curve.
type Point struct{ X, Y float64 }

// Curve is a piecewise-linear function through sorted anchor points, with
// clamped extrapolation beyond the ends. It models throughput or power
// versus log2(input size).
type Curve struct {
	pts []Point
}

// NewCurve builds a curve from anchor points (sorted internally). At
// least one point is required and Y values must be positive.
func NewCurve(pts ...Point) (Curve, error) {
	if len(pts) == 0 {
		return Curve{}, errors.New("device: curve needs at least one point")
	}
	cp := make([]Point, len(pts))
	copy(cp, pts)
	sort.Slice(cp, func(i, j int) bool { return cp[i].X < cp[j].X })
	for i, p := range cp {
		if p.Y <= 0 || math.IsNaN(p.Y) || math.IsNaN(p.X) {
			return Curve{}, fmt.Errorf("device: curve point %d invalid: %+v", i, p)
		}
		if i > 0 && cp[i].X == cp[i-1].X {
			return Curve{}, fmt.Errorf("device: duplicate curve X %g", p.X)
		}
	}
	return Curve{pts: cp}, nil
}

// Constant returns a flat curve at y.
func Constant(y float64) (Curve, error) {
	return NewCurve(Point{X: 0, Y: y})
}

// At evaluates the curve at x with linear interpolation and clamped
// extrapolation.
func (c Curve) At(x float64) float64 {
	n := len(c.pts)
	if n == 0 {
		return 0 // zero curve; callers should construct via NewCurve
	}
	if x <= c.pts[0].X {
		return c.pts[0].Y
	}
	if x >= c.pts[n-1].X {
		return c.pts[n-1].Y
	}
	i := sort.Search(n, func(i int) bool { return c.pts[i].X >= x }) - 1
	a, b := c.pts[i], c.pts[i+1]
	t := (x - a.X) / (b.X - a.X)
	return a.Y + t*(b.Y-a.Y)
}

// Points returns a copy of the anchors.
func (c Curve) Points() []Point {
	out := make([]Point, len(c.pts))
	copy(out, c.pts)
	return out
}

// PowerBreakdown is the Figure 3 decomposition of measured device power
// at one operating point, in watts.
type PowerBreakdown struct {
	CoreDynamic   float64 // switching power of the compute fabric
	CoreLeakage   float64 // static power of the compute fabric
	UncoreStatic  float64 // idle memory controllers, PLLs, I/O
	UncoreDynamic float64 // memory-traffic-proportional uncore power
	Unknown       float64 // residual the rig cannot attribute
}

// Total returns the wall-measured power.
func (p PowerBreakdown) Total() float64 {
	return p.CoreDynamic + p.CoreLeakage + p.UncoreStatic + p.UncoreDynamic + p.Unknown
}

// Compute returns the compute-attributable power (core dynamic plus core
// leakage) — the quantity Table 4's efficiency metrics are defined over.
func (p PowerBreakdown) Compute() float64 {
	return p.CoreDynamic + p.CoreLeakage
}

// Model is the analytic performance/power model of one (device, workload)
// pair. Throughput and compute power are curves over log2(input size);
// MMM and Black-Scholes use flat curves (their measured operating point).
type Model struct {
	Device   Device
	Workload paper.WorkloadID

	Throughput Curve // work units per second vs log2 N
	ComputeW   Curve // core dynamic + leakage watts vs log2 N

	// Power decomposition ratios (device-kind dependent, Figure 3).
	LeakFraction  float64 // fraction of compute power that is leakage
	UncoreStaticW float64 // constant uncore static watts
	UncoreDynW    Curve   // uncore dynamic watts vs log2 N (may be flat 0)
	UnknownW      float64 // constant unattributed watts

	// Bandwidth model: beyond the on-chip knee, off-chip traffic exceeds
	// compulsory by ExcessTrafficFactor (out-of-core algorithms).
	ExcessTrafficFactor float64
}

// ThroughputAt returns work units per second at input size n (log2 taken
// internally; n <= 1 uses the curve's left edge).
func (m Model) ThroughputAt(n int) float64 {
	return m.Throughput.At(log2f(n))
}

// ComputePowerAt returns compute watts at input size n.
func (m Model) ComputePowerAt(n int) float64 {
	return m.ComputeW.At(log2f(n))
}

// BreakdownAt returns the full Figure 3 power decomposition at size n.
func (m Model) BreakdownAt(n int) PowerBreakdown {
	compute := m.ComputePowerAt(n)
	leak := compute * m.LeakFraction
	return PowerBreakdown{
		CoreDynamic:   compute - leak,
		CoreLeakage:   leak,
		UncoreStatic:  m.UncoreStaticW,
		UncoreDynamic: m.UncoreDynW.At(log2f(n)),
		Unknown:       m.UnknownW,
	}
}

// EfficiencyAt returns work per joule of compute energy at size n.
func (m Model) EfficiencyAt(n int) float64 {
	p := m.ComputePowerAt(n)
	if p == 0 {
		return 0
	}
	return m.ThroughputAt(n) / p
}

func log2f(n int) float64 {
	if n < 2 {
		return 1
	}
	return math.Log2(float64(n))
}
