package heterosim_test

import (
	"fmt"

	heterosim "github.com/calcm/heterosim"
)

// Evaluate the paper's measured ASIC FFT core under 40nm budgets.
func Example() {
	u, _ := heterosim.PublishedUCore(heterosim.ASIC, heterosim.FFT1024)
	ev := heterosim.NewEvaluator()
	pt, _ := ev.Optimize(heterosim.Design{
		Kind: heterosim.Het, Label: "ASIC FFT", UCore: u,
	}, 0.99, heterosim.Budgets{Area: 19, Power: 8.6, Bandwidth: 57.9})
	fmt.Printf("speedup %.1f at r=%d (%s)\n", pt.Speedup, pt.R, pt.Limit)
	// Output: speedup 49.7 at r=11 (bandwidth-limited)
}

// Published Table 5 parameters are available by device and workload.
func ExamplePublishedUCore() {
	u, ok := heterosim.PublishedUCore(heterosim.GTX285, heterosim.MMM)
	fmt.Println(ok, u.Mu, u.Phi)
	u, ok = heterosim.PublishedUCore(heterosim.R5870, heterosim.BS)
	fmt.Println(ok, u.Mu, u.Phi) // the paper could not measure this pair
	// Output:
	// true 3.41 0.74
	// false 0 0
}

// Project the FFT-1024 lineup across the ITRS roadmap at f = 0.99.
func ExampleProjectWorkload() {
	ts, _ := heterosim.ProjectWorkload(heterosim.FFT1024, 0.99)
	for _, tr := range ts {
		last := tr.Points[len(tr.Points)-1]
		fmt.Printf("%-12s 11nm speedup %5.1f (%s)\n",
			tr.Design.Label, last.Point.Speedup, last.Point.Limit)
	}
	// Output:
	// (0) SymCMP   11nm speedup  25.9 (power-limited)
	// (1) AsymCMP  11nm speedup  32.1 (power-limited)
	// (2) LX760    11nm speedup  67.9 (bandwidth-limited)
	// (3) GTX285   11nm speedup  67.9 (bandwidth-limited)
	// (4) GTX480   11nm speedup  67.9 (bandwidth-limited)
	// (6) ASIC     11nm speedup  67.9 (bandwidth-limited)
}

// The ITRS 2009 roadmap behind Table 6.
func ExampleITRS2009() {
	for _, n := range heterosim.ITRS2009().Nodes() {
		fmt.Printf("%d %s: %3.0f BCE, %.2fx power, %.0f GB/s\n",
			n.Year, n.Name, n.MaxAreaBCE, n.RelPowerPerXtor, n.BandwidthGBs(180))
	}
	// Output:
	// 2011 40nm:  19 BCE, 1.00x power, 180 GB/s
	// 2013 32nm:  37 BCE, 0.75x power, 198 GB/s
	// 2016 22nm:  75 BCE, 0.50x power, 234 GB/s
	// 2019 16nm: 149 BCE, 0.36x power, 234 GB/s
	// 2022 11nm: 298 BCE, 0.25x power, 252 GB/s
}

// Varying-parallelism profiles distinguish applications the scalar f
// cannot.
func ExampleTwoPhaseProfile() {
	u, _ := heterosim.PublishedUCore(heterosim.ASIC, heterosim.MMM)
	narrow, _ := heterosim.TwoPhaseProfile(0.9, 2) // only 2 parallel streams
	wide, _ := heterosim.TwoPhaseProfile(0.9, 1e9) // unbounded parallelism
	sNarrow, _ := narrow.SpeedupHeterogeneous(64, 2, u)
	sWide, _ := wide.SpeedupHeterogeneous(64, 2, u)
	fmt.Printf("same f=0.9: narrow %.1f, wide %.1f\n", sNarrow, sWide)
	// Output: same f=0.9: narrow 11.5, wide 14.0
}
